package core

import (
	"math/rand"
	"testing"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// sameCandidates compares the stable part of two answers: IDs in rank
// order, exact keys and dominator counts. Volatile fields (elapsed,
// examined) are intentionally ignored — the cache stores encoded bodies,
// but the invalidation contract is about the candidate list.
func sameCandidates(a, b *Result) bool {
	if len(a.Candidates) != len(b.Candidates) {
		return false
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		if ca.Object.ID() != cb.Object.ID() || ca.MinDist != cb.MinDist || ca.Dominators != cb.Dominators {
			return false
		}
	}
	return true
}

// Soundness: whenever the shield says an insert cannot affect a cached
// answer, re-running the search on an index containing the new object
// must reproduce the candidate list exactly — for every operator and for
// both near and far insert positions, so the test exercises shielded and
// unshielded geometry alike.
func TestShieldInsertSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	objs := randDataset(rng, 50, 2, 4, 60)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	shielded, unshielded := 0, 0
	nextID := 10000
	for trial := 0; trial < 6; trial++ {
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 60), 5)
		for _, op := range Operators {
			base := idx.SearchK(q, op, k)
			shield := NewAnswerShield(q, geom.Euclidean, k, base.Candidates)
			for ins := 0; ins < 12; ins++ {
				// Mix of placements: near the query (almost never
				// shielded), mid-range, and far outside the hot region
				// (usually shielded when the band is deep enough).
				var center geom.Point
				switch ins % 3 {
				case 0:
					center = randCenter(rng, 2, 60)
				case 1:
					center = geom.Point{rng.Float64()*40 + 100, rng.Float64()*40 + 100}
				default:
					center = geom.Point{rng.Float64()*200 + 400, rng.Float64()*200 + 400}
				}
				o := randObject(rng, nextID, 2, 3, center, 4)
				nextID++
				if !shield.ShieldsInsert(o.MBR()) {
					unshielded++
					continue
				}
				shielded++
				grown, err := NewIndex(append(append([]*uncertain.Object{}, objs...), o))
				if err != nil {
					t.Fatal(err)
				}
				fresh := grown.SearchK(q, op, k)
				if !sameCandidates(base, fresh) {
					t.Fatalf("op %v trial %d: shield approved insert id=%d at %v but answer changed:\nbase  %v\nfresh %v",
						op, trial, o.ID(), center, base.IDs(), fresh.IDs())
				}
			}
		}
	}
	if shielded == 0 {
		t.Fatal("shield never fired — test exercised nothing")
	}
	t.Logf("shielded %d inserts, invalidated %d", shielded, unshielded)
}

// The shield must always fire for an insert far beyond the candidate keys
// when the band is at least k deep — otherwise the cache would flush on
// every unrelated mutation and the serving tier's hit rate collapses.
func TestShieldInsertFarObjectShielded(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	objs := randDataset(rng, 40, 2, 4, 30)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 3, geom.Point{15, 15}, 3)
	res := idx.SearchK(q, SSD, 2)
	if len(res.Candidates) < 2 {
		t.Skip("band too shallow")
	}
	shield := NewAnswerShield(q, geom.Euclidean, 2, res.Candidates)
	far := geom.NewRect(geom.Point{1e6, 1e6}, geom.Point{1e6 + 1, 1e6 + 1})
	if !shield.ShieldsInsert(far) {
		t.Fatal("distant insert not shielded")
	}
	// An insert landing right on the query must never be shielded.
	near := geom.NewRect(geom.Point{14, 14}, geom.Point{16, 16})
	if shield.ShieldsInsert(near) {
		t.Fatal("insert on top of the query shielded")
	}
	// Dimension mismatch is conservatively unshielded.
	if shield.ShieldsInsert(geom.NewRect(geom.Point{0, 0, 0}, geom.Point{1, 1, 1})) {
		t.Fatal("dim-mismatched rect shielded")
	}
}

// Deletion rule: removing an object that is not among the answer's result
// IDs leaves the candidate list identical. This is the geometry-free half
// of the invalidation contract the front door relies on (see shield.go's
// header for the transitivity argument).
func TestShieldDeleteNonCandidateHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	objs := randDataset(rng, 45, 2, 4, 50)
	const k = 3
	for trial := 0; trial < 4; trial++ {
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 50), 4)
		for _, op := range Operators {
			idx, err := NewIndex(objs)
			if err != nil {
				t.Fatal(err)
			}
			base := idx.SearchK(q, op, k)
			inAnswer := map[int]bool{}
			for _, id := range base.IDs() {
				inAnswer[id] = true
			}
			removed := 0
			for _, o := range objs {
				if inAnswer[o.ID()] {
					continue
				}
				if !idx.Delete(o.ID()) {
					t.Fatalf("delete %d failed", o.ID())
				}
				removed++
				if removed == 10 {
					break
				}
			}
			fresh := idx.SearchK(q, op, k)
			if !sameCandidates(base, fresh) {
				t.Fatalf("op %v: deleting %d non-candidates changed the answer: %v -> %v",
					op, removed, base.IDs(), fresh.IDs())
			}
		}
	}
}

// Non-Euclidean shields fall back to the full instance set; soundness
// must hold there too.
func TestShieldInsertSoundnessManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	objs := randDataset(rng, 35, 2, 4, 40)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	opts := SearchOptions{Filters: AllFilters, Metric: geom.Manhattan}
	shieldedTotal := 0
	nextID := 20000
	for trial := 0; trial < 4; trial++ {
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 40), 4)
		base := idx.SearchKOpts(q, SSD, k, opts)
		shield := NewAnswerShield(q, geom.Manhattan, k, base.Candidates)
		for ins := 0; ins < 8; ins++ {
			center := geom.Point{rng.Float64()*500 + 200, rng.Float64()*500 + 200}
			if ins%2 == 0 {
				center = randCenter(rng, 2, 40)
			}
			o := randObject(rng, nextID, 2, 3, center, 3)
			nextID++
			if !shield.ShieldsInsert(o.MBR()) {
				continue
			}
			shieldedTotal++
			grown, err := NewIndex(append(append([]*uncertain.Object{}, objs...), o))
			if err != nil {
				t.Fatal(err)
			}
			fresh := grown.SearchKOpts(q, SSD, k, opts)
			if !sameCandidates(base, fresh) {
				t.Fatalf("manhattan trial %d: shielded insert changed answer %v -> %v",
					trial, base.IDs(), fresh.IDs())
			}
		}
	}
	if shieldedTotal == 0 {
		t.Fatal("manhattan shield never fired")
	}
}

func TestAdmissionTryAcquire(t *testing.T) {
	a := NewAdmission(2)
	if !a.TryAcquire() || !a.TryAcquire() {
		t.Fatal("fresh gate refused tokens")
	}
	if a.TryAcquire() {
		t.Fatal("over-admitted")
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	a.Release()
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	if !a.TryAcquire() {
		t.Fatal("released token not reusable")
	}
}
