package core

import (
	"math"

	"spatialdom/internal/distr"
	"spatialdom/internal/geom"
	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// This file implements the Peer-SD check (Section 5.1.2). Theorem 12
// reduces P-SD(U,V,Q) to max-flow: build a bipartite network with source
// capacities p(u), sink capacities p(v) and an unbounded edge u→v whenever
// u ⪯Q v; P-SD holds iff the max flow equals 1 (and U_Q ≠ V_Q).
//
// Filters applied before the exact network, in order:
//
//  1. cover-based validation on MBRs (Theorem 4) and bounding hyperspheres
//     [25], with a strictness witness;
//  2. cover-based pruning: ¬S-SD or ¬SS-SD (decided statistically and, when
//     necessary, by scan) implies ¬P-SD;
//  3. the geometric in-hull exit: an instance of V inside the convex hull
//     of Q can only be matched by a co-located instance of U;
//  4. level-by-level G⁻ (validation) / G⁺ (pruning) networks over local
//     R-tree nodes;
//  5. the exact instance network, with admissibility u ⪯Q v decided in the
//     k-dimensional hull-distance space.

const flowEps = 1e-9

func (c *Checker) psd(u, v *uncertain.Object) bool {
	if c.cfg.Geometric {
		if holds, strict := c.geoValidate(u, v); holds && strict {
			return true
		}
	}
	if c.cfg.StatPruning {
		// Cover-based pruning: P-SD ⊂ SS-SD ⊂ S-SD, so a failed stochastic
		// scan at either granularity disproves P-SD. The scans themselves
		// reuse the cached distributions.
		su, sv := c.statsOf(u), c.statsOf(v)
		if su.statMin > sv.statMin+c.eps || su.statMean > sv.statMean+c.eps || su.statMax > sv.statMax+c.eps {
			c.Stats.StatPrunes++
			return false
		}
		pu, pv := c.perQ(u), c.perQ(v)
		for j := range pu {
			if !distr.StochasticLE(pu[j], pv[j], c.eps, c.cmp()) {
				c.Stats.StatPrunes++
				return false
			}
		}
	}
	if c.cfg.Geometric && c.euclid && c.query.Dim() == 2 {
		if c.inHullExit(u, v) {
			return false
		}
	}
	if c.cfg.LevelByLevel {
		if dec, ok := c.levelDecidePSD(u, v); ok {
			c.Stats.LevelDecisions++
			return dec
		}
	}
	return c.psdExact(u, v)
}

// inHullExit reports whether some positive-mass instance of V lies inside
// the convex hull of the query without a co-located instance of U — in
// which case no match can cover that instance and P-SD fails. (A point in
// CH(Q) cannot be ⪯Q-dominated by any distinct point: the closed halfspace
// bounded by their bisector that contains all of Q would have to contain
// the point itself.)
func (c *Checker) inHullExit(u, v *uncertain.Object) bool {
	qpts := c.query.Points()
	for i := 0; i < v.Len(); i++ {
		vi := v.Instance(i)
		if !geom.PointInHull2D(vi, qpts, c.hullIdx) {
			continue
		}
		colocated := false
		for j := 0; j < u.Len(); j++ {
			if u.Instance(j).Equal(vi) {
				colocated = true
				break
			}
		}
		c.Stats.InstanceComparisons += int64(u.Len())
		if !colocated {
			return true
		}
	}
	return false
}

// instLE reports whether instance ui of u is not farther than instance vi
// of v from every hull query instance (u ⪯Q v), using the cached
// hull-distance matrices. strict additionally reports a strictly closer
// hull instance.
func (c *Checker) instLE(du, dv []float64) (le, strict bool) {
	for k := range du {
		c.Stats.InstanceComparisons++
		if du[k] > dv[k]+c.eps {
			return false, false
		}
		if du[k] < dv[k]-c.eps {
			strict = true
		}
	}
	return true, strict
}

// distSpaceThreshold is the instance count beyond which the admissibility
// matrix is built with range queries over an R-tree in the hull-distance
// space instead of all-pairs comparisons (the Section 5.1.2 note: "by
// taking advantage of the efficient range search in spatial indexing
// techniques, we can efficiently improve the network construction time").
const distSpaceThreshold = 48

// admEdge records one admissible u→v edge of the exact P-SD network: the
// edge index and whether some hull instance strictly separates the pair.
type admEdge struct {
	e      int
	strict bool
}

// psdExact runs Theorem 12 on the instance-level network. The network and
// the admissible-edge records are carved out of the checker's scratch, so
// repeat solves do not allocate.
func (c *Checker) psdExact(u, v *uncertain.Object) bool {
	hu := c.hullDists(u)
	hv := c.hullDists(v)
	nu, nv := u.Len(), v.Len()
	g := &c.scratch.exact
	g.Reuse(nu + nv + 2)
	s, t := 0, nu+nv+1
	for i := 0; i < nu; i++ {
		g.AddEdge(s, 1+i, u.Prob(i))
	}
	for j := 0; j < nv; j++ {
		g.AddEdge(1+nu+j, t, v.Prob(j))
	}
	admissible := c.scratch.adm[:0]
	defer func() { c.scratch.adm = admissible[:0] }() // retain capacity growth
	anyEdges := false
	if nu >= distSpaceThreshold && nv >= distSpaceThreshold {
		// Distance-space construction: u ⪯Q v iff u's hull-distance vector
		// lies inside the box [0, hv[j]] — a range query.
		tree := c.distSpaceTree(u, hu)
		lo := growFloats(c.scratch.lo, len(c.hullPts))
		for k := range lo {
			lo[k] = 0
		}
		c.scratch.lo = lo
		hi := growFloats(c.scratch.hi, len(c.hullPts))
		c.scratch.hi = hi
		for j := 0; j < nv; j++ {
			// Expand the box by eps so the range query is a superset of
			// the tolerance-aware instLE test, then recheck each hit.
			for k, d := range hv[j] {
				hi[k] = d + c.eps
			}
			win := geom.Rect{Lo: lo, Hi: hi}
			c.Stats.InstanceComparisons++ // one range probe
			tree.Search(win, func(e rtree.Entry) bool {
				i := e.ID
				le, strict := c.instLE(hu[i], hv[j])
				if le {
					edge := g.AddEdge(1+i, 1+nu+j, math.Inf(1))
					admissible = append(admissible, admEdge{edge, strict})
					anyEdges = true
				}
				return true
			})
		}
	} else {
		for i := 0; i < nu; i++ {
			for j := 0; j < nv; j++ {
				if le, strict := c.instLE(hu[i], hv[j]); le {
					e := g.AddEdge(1+i, 1+nu+j, math.Inf(1))
					admissible = append(admissible, admEdge{e, strict})
					anyEdges = true
				}
			}
		}
	}
	if !anyEdges {
		return false
	}
	c.Stats.FlowSolves++
	if g.MaxFlow(s, t) < 1-flowEps {
		return false
	}
	// A match exists. The side condition U_Q ≠ V_Q remains: if any matched
	// tuple is strictly closer at some hull instance, the CDFs differ and
	// the condition holds for free; otherwise compare the distributions.
	for _, a := range admissible {
		if a.strict && g.Flow(a.e) > flowEps {
			return true
		}
	}
	return !distr.Equal(c.distQ(u), c.distQ(v), c.eps)
}

// distSpaceTree returns (building and caching) an R-tree over the object's
// instances mapped into the k-dimensional hull-distance space.
//
//nnc:coldpath builds once per (object, search) and is cached on the objCache; warm lookups return the cached tree
func (c *Checker) distSpaceTree(o *uncertain.Object, hd [][]float64) *rtree.Tree {
	oc := c.cacheOf(o)
	if oc.distTree == nil {
		entries := make([]rtree.Entry, len(hd))
		for i, row := range hd {
			entries[i] = rtree.Entry{Rect: geom.PointRect(geom.Point(row)), ID: i}
		}
		oc.distTree = rtree.Bulk(entries, 2, 16)
	}
	return oc.distTree
}

// levelDecidePSD attempts the level-by-level G⁻/G⁺ networks of Section
// 5.1.2 on local R-tree nodes. ok is false when all attempted levels are
// inconclusive.
func (c *Checker) levelDecidePSD(u, v *uncertain.Object) (dec, ok bool) {
	cu, cv := c.cacheOf(u), c.cacheOf(v)
	maxLvl := coarseLevels(cu, cv)
	for lvl := 1; lvl <= maxLvl; lvl++ {
		bu := c.levelInfo(cu, lvl)
		bv := c.levelInfo(cv, lvl)
		nu, nv := len(bu.nodes), len(bv.nodes)

		// G⁻ (validation): an edge U^i→V^j only when EVERY u∈U^i is at
		// least as close as every v∈V^j to every query instance, decided
		// exactly on node MBRs. |f⁻| = 1 proves a full instance match.
		gMinus := &c.scratch.gMinus
		gMinus.Reuse(nu + nv + 2)
		// G⁺ (pruning): an edge unless some query instance strictly
		// separates V^j's MBR below U^i's MBR (making u ⪯Q v impossible
		// for every pair in the nodes). |f⁺| < 1 disproves the match.
		gPlus := &c.scratch.gPlus
		gPlus.Reuse(nu + nv + 2)
		s, t := 0, nu+nv+1
		for i := 0; i < nu; i++ {
			gMinus.AddEdge(s, 1+i, bu.masses[i])
			gPlus.AddEdge(s, 1+i, bu.masses[i])
		}
		for j := 0; j < nv; j++ {
			gMinus.AddEdge(1+nu+j, t, bv.masses[j])
			gPlus.AddEdge(1+nu+j, t, bv.masses[j])
		}
		minusEdges := 0
		for i := 0; i < nu; i++ {
			ri := bu.nodes[i].Rect()
			for j := 0; j < nv; j++ {
				rj := bv.nodes[j].Rect()
				le, _ := c.rectLE(ri, rj)
				if le {
					gMinus.AddEdge(1+i, 1+nu+j, math.Inf(1))
					minusEdges++
				}
				// Keep the G⁺ edge unless v-side strictly beats u-side.
				if rvLE, rvStrict := c.rectLE(rj, ri); !(rvLE && rvStrict) {
					gPlus.AddEdge(1+i, 1+nu+j, math.Inf(1))
				}
			}
		}
		c.Stats.FlowSolves++
		if gPlus.MaxFlow(s, t) < 1-flowEps {
			return false, true
		}
		if minusEdges > 0 {
			c.Stats.FlowSolves++
			if gMinus.MaxFlow(s, t) >= 1-flowEps {
				// The coarse match proves an instance-level match exists;
				// settle the ≠ side condition on the exact distributions.
				return !distr.Equal(c.distQ(u), c.distQ(v), c.eps), true
			}
		}
	}
	return false, false
}

// rectLE reports whether every point of a is at least as close as every
// point of b to every hull query instance (the MBR-level u ⪯Q v test),
// with a strictness witness.
func (c *Checker) rectLE(a, b geom.Rect) (le, strict bool) {
	le = true
	for _, q := range c.hullPts {
		c.Stats.InstanceComparisons++
		var maxA, minB float64
		if c.euclid {
			maxA = a.MaxSqDistPoint(q)
			minB = b.MinSqDistPoint(q)
		} else {
			maxA = c.metric.MaxDistRect(q, a)
			minB = c.metric.MinDistRect(q, b)
		}
		if maxA > minB {
			return false, false
		}
		if maxA < minB {
			strict = true
		}
	}
	return le, strict
}
