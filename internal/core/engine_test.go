package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"spatialdom/internal/datagen"
)

func engineFixture(t *testing.T, n int, seed int64) (*Index, *datagen.Dataset) {
	t.Helper()
	ds := datagen.Generate(datagen.Params{N: n, M: 6, EdgeLen: 400, Seed: seed})
	idx, err := NewIndex(ds.Objects)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ds
}

// A context canceled mid-search aborts the traversal and returns the
// partial result with the context's error.
func TestSearchBackendCancellation(t *testing.T) {
	idx, ds := engineFixture(t, 150, 31)
	q := ds.Queries(1, 4, 200, 32)[0]
	full, err := idx.SearchKCtx(context.Background(), q, FPlusSD, 1, SearchOptions{Filters: AllFilters})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Candidates) < 2 {
		t.Skip("dataset produced a trivial candidate set")
	}
	ctx, cancel := context.WithCancel(context.Background())
	res, err := idx.SearchKCtx(ctx, q, FPlusSD, 1, SearchOptions{
		Filters:     AllFilters,
		OnCandidate: func(Candidate) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Candidates) == 0 || len(res.Candidates) >= len(full.Candidates) {
		t.Fatalf("partial result wrong: %+v", res)
	}
	for i, c := range res.Candidates {
		if c.Object.ID() != full.Candidates[i].Object.ID() {
			t.Fatalf("partial result not a prefix at %d", i)
		}
	}
}

// The SearchOptions.Context field cancels ctx-less entry points too.
func TestSearchOptionsContext(t *testing.T) {
	idx, ds := engineFixture(t, 150, 33)
	q := ds.Queries(1, 4, 200, 34)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the search even starts
	res := idx.SearchKOpts(q, PSD, 1, SearchOptions{Filters: AllFilters, Context: ctx})
	if res == nil || len(res.Candidates) != 0 {
		t.Fatalf("pre-canceled search produced candidates: %+v", res)
	}
}

// An already-done context still yields a well-formed (empty) result and
// the context error from the ctx-taking entry point.
func TestSearchBackendPreCanceled(t *testing.T) {
	idx, ds := engineFixture(t, 100, 35)
	q := ds.Queries(1, 4, 200, 36)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SearchBackend(ctx, idx, q, SSD, 1, SearchOptions{Filters: AllFilters})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res == nil || len(res.Candidates) != 0 || res.Elapsed <= 0 {
		t.Fatalf("partial result wrong: %+v", res)
	}
}

// Concurrent searches share the scratch pool without interference; every
// run must reproduce the serial result exactly.
func TestEngineScratchPoolConcurrent(t *testing.T) {
	idx, ds := engineFixture(t, 150, 37)
	queries := ds.Queries(4, 4, 200, 38)
	type key struct{ qi, opi int }
	want := map[key][]int{}
	for qi, q := range queries {
		for opi, op := range Operators {
			want[key{qi, opi}] = idx.Search(q, op).IDs()
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for rep := 0; rep < 4; rep++ {
		for qi, q := range queries {
			for opi, op := range Operators {
				wg.Add(1)
				go func() {
					defer wg.Done()
					got := idx.Search(q, op).IDs()
					exp := want[key{qi, opi}]
					if len(got) != len(exp) {
						errs <- "length mismatch"
						return
					}
					for i := range exp {
						if got[i] != exp[i] {
							errs <- "order mismatch"
							return
						}
					}
				}()
			}
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestIOStatsArithmetic(t *testing.T) {
	a := IOStats{Hits: 10, Misses: 4, Reads: 4, Writes: 1, CacheHits: 3, CacheEvictions: 2}
	b := IOStats{Hits: 6, Misses: 1, Reads: 1, Writes: 1, CacheHits: 1, CacheEvictions: 0}
	d := a.Sub(b)
	if d != (IOStats{Hits: 4, Misses: 3, Reads: 3, CacheHits: 2, CacheEvictions: 2}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Accesses() != 7 {
		t.Fatalf("Accesses = %d", d.Accesses())
	}
}

// The typed heap must behave exactly like container/heap: min key first,
// pop order non-decreasing, no loss across interleaved push/pop.
func TestSearchHeapOrdering(t *testing.T) {
	var h searchHeap
	keys := []float64{5, 1, 4, 1, 3, 9, 2, 6, 0, 7, 8, 2}
	for _, k := range keys {
		h.push(searchItem{key: k})
	}
	// Interleave: pop two, push one, then drain.
	var got []float64
	got = append(got, h.pop().key, h.pop().key)
	h.push(searchItem{key: 1.5})
	for h.len() > 0 {
		got = append(got, h.pop().key)
	}
	if len(got) != len(keys)+1 {
		t.Fatalf("lost items: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("pop order not sorted: %v", got)
		}
	}
}
