package core

import (
	"context"

	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// Index is the memory-resident Backend: nodes are *rtree.Node pointers
// carried in NodeRef.P, object references resolve eagerly (ObjRef.Obj is
// always set), and storage counters are identically zero.
var _ Backend = (*Index)(nil)

// Root returns the global R-tree root.
func (idx *Index) Root() (NodeRef, error) {
	return NodeRef{P: idx.tree.Root()}, nil
}

// Expand visits the children of an in-memory R-tree node: object entries
// of a leaf, subtree nodes otherwise.
func (idx *Index) Expand(n NodeRef, visit func(BackendEntry)) error {
	node := n.P.(*rtree.Node)
	if node.IsLeaf() {
		for _, e := range node.Entries() {
			visit(BackendEntry{Rect: e.Rect, Obj: ObjRef{Obj: idx.objects[e.ID]}})
		}
	} else {
		for _, ch := range node.Children() {
			visit(BackendEntry{Rect: ch.Rect(), IsNode: true, Node: NodeRef{P: ch}})
		}
	}
	return nil
}

// Resolve returns the eagerly-resolved object.
func (idx *Index) Resolve(r ObjRef) (*uncertain.Object, error) { return r.Obj, nil }

// AccessStats reports zero: the memory backend performs no storage I/O.
func (idx *Index) AccessStats() IOStats { return IOStats{} }

// DenseIDSpanner is an optional Backend interface: a backend whose object
// IDs occupy a dense range [0, n) reports n, letting the engine swap the
// checker's per-object cache from a hash map to a directly indexed table.
// A return of 0 means the span is unknown (or IDs are sparse/negative) and
// the checker stays on the map.
type DenseIDSpanner interface {
	DenseIDSpan() int
}

var _ DenseIDSpanner = (*Index)(nil)

// DenseIDSpan reports the object-ID span computed at build time.
func (idx *Index) DenseIDSpan() int { return idx.denseSpan }

// SearchKCtx is SearchKOpts with a context: the traversal aborts at the
// next heap pop or candidate emission once ctx is canceled, returning the
// partial Result together with ctx.Err().
func (idx *Index) SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	return SearchBackend(ctx, idx, q, op, k, opts)
}
