package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialdom/internal/uncertain"
)

// searcherFunc adapts a function to the KSearcher interface for batch
// semantics tests that don't need a real index.
type searcherFunc func(ctx context.Context, q *uncertain.Object) (*Result, error)

func (f searcherFunc) SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	return f(ctx, q)
}

// fakeQueries builds n 1-D single-instance query objects with IDs 0..n-1.
func fakeQueries(t *testing.T, n int) []*uncertain.Object {
	t.Helper()
	qs := make([]*uncertain.Object, n)
	for i := range qs {
		qs[i] = obj1d(t, i, float64(i))
	}
	return qs
}

// TestWorkQueueClaimsEachIndexOnce hammers one queue from many goroutines
// (owners draining their own segments, then stealing) and asserts every
// index in [0, n) is handed out exactly once.
func TestWorkQueueClaimsEachIndexOnce(t *testing.T) {
	const n, workers = 10000, 8
	q := newWorkQueue(n, workers)
	var claimed [n]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i, ok := q.next(w)
				if !ok {
					return
				}
				claimed[i].Add(1)
			}
		}(w)
	}
	wg.Wait()
	for i := range claimed {
		if got := claimed[i].Load(); got != 1 {
			t.Fatalf("index %d claimed %d times", i, got)
		}
	}
}

// TestWorkQueueSegmentsBalanced: the initial split is contiguous and
// balanced to within one item.
func TestWorkQueueSegmentsBalanced(t *testing.T) {
	q := newWorkQueue(10, 4)
	want := [][2]uint32{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for w, b := range want {
		lo, hi := unpackBounds(q.segs[w].bounds.Load())
		if lo != b[0] || hi != b[1] {
			t.Fatalf("segment %d = [%d,%d), want [%d,%d)", w, lo, hi, b[0], b[1])
		}
	}
}

// TestWorkQueueStealFromBack: a thief takes the victim's highest index
// while the owner keeps taking its lowest.
func TestWorkQueueStealFromBack(t *testing.T) {
	q := newWorkQueue(8, 2) // segments [0,4) and [4,8)
	// Drain worker 1's own segment.
	for j := 0; j < 4; j++ {
		if i, ok := q.next(1); !ok || i != 4+j {
			t.Fatalf("worker 1 own take %d = %d,%v", j, i, ok)
		}
	}
	// Its next take must steal from the back of worker 0's segment.
	if i, ok := q.next(1); !ok || i != 3 {
		t.Fatalf("steal = %d,%v; want 3,true", i, ok)
	}
	if i, ok := q.next(0); !ok || i != 0 {
		t.Fatalf("owner front = %d,%v; want 0,true", i, ok)
	}
}

// TestAdmissionCapsConcurrency: with a shared Admission of limit L, the
// number of concurrently executing searches across competing batches never
// exceeds L, even with far more workers than tokens.
func TestAdmissionCapsConcurrency(t *testing.T) {
	const limit = 2
	adm := NewAdmission(limit)
	if adm.Limit() != limit {
		t.Fatalf("Limit() = %d, want %d", adm.Limit(), limit)
	}
	var cur, peak atomic.Int32
	s := searcherFunc(func(ctx context.Context, q *uncertain.Object) (*Result, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return &Result{}, nil
	})
	queries := fakeQueries(t, 64)
	var wg sync.WaitGroup
	for b := 0; b < 3; b++ { // three competing batches share the gate
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := SearchParallelOpts(context.Background(), s, queries, PSD, 1,
				SearchOptions{}, BatchOptions{Workers: 8, Admission: adm})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("peak concurrent searches %d exceeds admission limit %d", p, limit)
	}
}

// TestAdmissionHonorsCancel: a worker blocked on a token exits when the
// batch context is canceled instead of deadlocking.
func TestAdmissionHonorsCancel(t *testing.T) {
	adm := NewAdmission(1)
	// Hold the only token for the duration of the test.
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := SearchParallelOpts(ctx, searcherFunc(func(context.Context, *uncertain.Object) (*Result, error) {
			return &Result{}, nil
		}), fakeQueries(t, 4), PSD, 1, SearchOptions{}, BatchOptions{Workers: 2, Admission: adm})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not exit after cancel while waiting for admission")
	}
}

// TestPinnedScratchUsedAndCleared: a search run under a pinned-scratch
// context must populate that scratch (proving the pool was bypassed) and
// leave it cleared for the worker's next query.
func TestPinnedScratchUsedAndCleared(t *testing.T) {
	idx, ds := engineFixture(t, 150, 41)
	q := ds.Queries(1, 4, 200, 42)[0]
	sc := new(searchScratch)
	ctx := withPinnedScratch(context.Background(), sc)
	if _, err := idx.SearchKCtx(ctx, q, PSD, 1, SearchOptions{Filters: AllFilters}); err != nil {
		t.Fatal(err)
	}
	if cap(sc.heap.s) == 0 && cap(sc.band) == 0 {
		t.Fatal("pinned scratch was never used; search went to the pool")
	}
	if len(sc.heap.s) != 0 || len(sc.band) != 0 || len(sc.batch) != 0 {
		t.Fatalf("pinned scratch not cleared after search: heap=%d band=%d batch=%d",
			len(sc.heap.s), len(sc.band), len(sc.batch))
	}
	// The same scratch must back a second search without issue.
	if _, err := idx.SearchKCtx(ctx, q, PSD, 1, SearchOptions{Filters: AllFilters}); err != nil {
		t.Fatal(err)
	}
}
