package core

import (
	"context"

	"spatialdom/internal/uncertain"
)

// Stream runs the progressive NNC search in a goroutine and returns a
// channel that yields each candidate the moment it is proven undominated —
// the channel-shaped form of Algorithm 1's progressive property, suitable
// for feeding a UI that renders results while the search runs.
//
// The channel is closed when the search completes or the context is
// canceled; cancellation aborts the traversal itself at the next heap pop
// or candidate emission. The final Result (with timing and statistics) is
// delivered on the second returned channel, which receives exactly one
// value unless the context is canceled first.
func (idx *Index) Stream(ctx context.Context, q *uncertain.Object, op Operator, opts SearchOptions) (<-chan Candidate, <-chan *Result) {
	return StreamBackend(ctx, idx, q, op, opts)
}
