package core

import (
	"math"
	"testing"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// circleObject places m instances on a circle of the given radius — the
// shape where a bounding sphere is strictly tighter than an MBR (whose
// empty corners inflate the max-distance bound by √2).
func circleObject(id int, cx, cy, r float64, m int) *uncertain.Object {
	pts := make([]geom.Point, m)
	for i := range pts {
		ang := float64(i) / float64(m) * 2 * math.Pi
		pts[i] = geom.Point{cx + r*math.Cos(ang), cy + r*math.Sin(ang)}
	}
	return uncertain.MustNew(id, pts, nil)
}

// A V placed between the MBR's corner bound and the sphere bound: the MBR
// validation is inconclusive but the sphere validation decides, and the
// verdict matches the exact check.
func TestSphereValidationFiresWhereMBRCannot(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}}, nil)
	u := circleObject(1, 100, 0, 10, 16)
	// MBR max-distance bound from q: dist to corner (110, 10) ≈ 110.45.
	// Sphere bound: 100 + 10 = 110. Put V's nearest point at 110.2.
	v := uncertain.MustNew(2, []geom.Point{{110.2, 0}, {111, 0}}, nil)

	mbrOnly := NewChecker(q, SSD, AllFilters)
	if holds, _ := mbrOnly.mbrValidate(u, v); holds {
		t.Fatal("fixture broken: MBR validation should be inconclusive")
	}
	if holds, strict := mbrOnly.sphereValidate(u, v); !holds || !strict {
		t.Fatal("fixture broken: sphere validation should decide strictly")
	}

	// The full checker must use the sphere and record it.
	c := NewChecker(q, SSD, AllFilters)
	if !c.Dominates(u, v) {
		t.Fatal("U must dominate V")
	}
	if c.Stats.SphereValidations != 1 {
		t.Fatalf("SphereValidations = %d, want 1", c.Stats.SphereValidations)
	}
	if c.Stats.MBRValidations != 0 {
		t.Fatalf("MBRValidations = %d, want 0", c.Stats.MBRValidations)
	}

	// And the verdict agrees with the unfiltered exact check.
	if !NewChecker(q, SSD, FilterConfig{}).Dominates(u, v) {
		t.Fatal("exact check disagrees with sphere validation")
	}
}

// Sphere validation is metric-aware: the radius is re-measured under the
// checker's metric so the bound stays sound for L1/L∞.
func TestSphereValidationNonEuclidean(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}}, nil)
	u := circleObject(1, 50, 0, 5, 12)
	v := uncertain.MustNew(2, []geom.Point{{200, 0}, {205, 0}}, nil)
	for _, m := range []geom.Metric{geom.Manhattan, geom.Chebyshev} {
		c := NewCheckerMetric(q, SSD, AllFilters, m)
		if !c.Dominates(u, v) {
			t.Fatalf("%s: far V must be dominated", m.Name())
		}
		bare := NewCheckerMetric(q, SSD, FilterConfig{}, m)
		if !bare.Dominates(u, v) {
			t.Fatalf("%s: exact check disagrees", m.Name())
		}
	}
}
