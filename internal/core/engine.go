package core

// This file holds the storage-agnostic query engine: Algorithm 1
// generalized to the k-skyband, running over any Backend. The k-NN
// candidates are the objects dominated by fewer than k other objects;
// k = 1 is the paper's NNC set. For every NN function f covered by the
// operator, the top-k objects under f are guaranteed to be k-NN
// candidates: if k objects dominate V they all score no worse than V under
// f, pushing V out of the top k.
//
// Correctness of incremental counting. Any dominator of V has
// min(U_Q) <= min(V_Q) (statistic necessity), so processing objects in
// non-decreasing exact min-pair-distance order guarantees every dominator
// of V is processed no later than V. Counting dominators only among
// emitted band members suffices: ordering V's dominator poset by a linear
// extension, its first k elements each have < k dominators themselves and
// hence are band members.
//
// Ties. Objects whose exact keys coincide (within tieEps) could pop in
// either order, so they are drained into one batch and each member counts
// dominators over band ∪ batch: a batch member's true dominators all have
// keys <= the batch key and therefore sit in the band or the batch, and
// any counted dominator — band or not — witnesses a true domination.

import (
	"context"
	"sync"
	"time"

	"spatialdom/internal/faults"
	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// tieEps is the slack under which two exact heap keys count as tied.
const tieEps = 1e-9

// NodeRef identifies a tree node inside a Backend. Pointer-addressed
// backends (the in-memory Index) store their node pointer in P — storing a
// pointer in an interface value does not allocate — while page-addressed
// backends use the numeric ID. The engine treats both fields as opaque.
type NodeRef struct {
	P  any
	ID uint64
}

// ObjRef identifies an object held by a Backend. Memory-resident backends
// resolve eagerly and set Obj; disk-resident backends set ID and defer
// materialization to Backend.Resolve, which is only invoked once the
// object's MBR has survived entry pruning.
type ObjRef struct {
	Obj *uncertain.Object
	ID  uint64
}

// BackendEntry is one child of an expanded tree node: a subtree when
// IsNode is set, an object reference otherwise. Rect is the child's MBR,
// used for ordering (min-distance key) and entry pruning (Theorem 4).
type BackendEntry struct {
	Rect   geom.Rect
	IsNode bool
	Node   NodeRef
	Obj    ObjRef
}

// Backend is the storage layer Algorithm 1 traverses: a global R-tree of
// object MBRs plus a way to materialize leaf references into objects. The
// in-memory Index and the disk-resident diskindex.Index are the two
// implementations; the engine is the only traversal loop either uses.
type Backend interface {
	// Root returns the root node of the global tree.
	Root() (NodeRef, error)
	// Expand enumerates the children of n in storage order. For a
	// disk-resident backend this is the point where a node page is read
	// (and counted) through the buffer pool.
	Expand(n NodeRef, visit func(BackendEntry)) error
	// Resolve materializes an object reference. References whose Obj is
	// already set must resolve to it without I/O.
	Resolve(ObjRef) (*uncertain.Object, error)
	// AccessStats reports the backend's cumulative storage counters. The
	// engine records the delta across a search into Result.IO, so
	// memory-resident backends simply return the zero value.
	AccessStats() IOStats
}

// IOStats reports storage access counters for one search: buffer-pool and
// page-file traffic plus decoded-object cache behavior. All fields are
// zero for memory-resident backends.
type IOStats struct {
	// Hits and Misses count logical page requests served from / missing
	// the buffer pool; Reads and Writes count physical page transfers.
	Hits, Misses, Reads, Writes int64
	// CacheHits and CacheEvictions count decoded-object LRU cache hits and
	// capacity evictions.
	CacheHits, CacheEvictions int64
}

// Sub returns s - o, field-wise; used to turn cumulative backend counters
// into per-search deltas.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		Hits:           s.Hits - o.Hits,
		Misses:         s.Misses - o.Misses,
		Reads:          s.Reads - o.Reads,
		Writes:         s.Writes - o.Writes,
		CacheHits:      s.CacheHits - o.CacheHits,
		CacheEvictions: s.CacheEvictions - o.CacheEvictions,
	}
}

// Accesses returns the logical page accesses (pool hits + misses).
func (s IOStats) Accesses() int64 { return s.Hits + s.Misses }

// --- the search heap ---------------------------------------------------------

// heap item kinds: an R-tree node, an object keyed by an MBR lower bound,
// and an object keyed by its exact min pair distance.
type itemKind uint8

const (
	kindNode itemKind = iota
	kindObjLB
	kindObjExact
)

type searchItem struct {
	key  float64
	kind itemKind
	rect geom.Rect // node/objLB: the entry MBR, for pop-time pruning
	node NodeRef
	obj  ObjRef
}

// searchHeap is a plain binary min-heap of searchItems, ordered by key. It
// is deliberately a concrete type — no container/heap, no generics — so
// Push/Pop never box items through interface{}; sift order matches
// container/heap exactly (left child wins key ties), keeping emission
// order stable across the refactor.
type searchHeap struct {
	s []searchItem
}

func (h *searchHeap) len() int { return len(h.s) }

// peekKey returns the smallest key; the heap must be non-empty.
func (h *searchHeap) peekKey() float64 { return h.s[0].key }

func (h *searchHeap) push(it searchItem) {
	h.s = append(h.s, it)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.s[parent].key <= h.s[i].key {
			break
		}
		h.s[parent], h.s[i] = h.s[i], h.s[parent]
		i = parent
	}
}

func (h *searchHeap) pop() searchItem {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	h.s[n] = searchItem{} // drop references held by the vacated slot
	h.s = h.s[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && h.s[l].key < h.s[small].key {
			small = l
		}
		if r := 2*i + 2; r < n && h.s[r].key < h.s[small].key {
			small = r
		}
		if small == i {
			break
		}
		h.s[i], h.s[small] = h.s[small], h.s[i]
		i = small
	}
	return top
}

// --- per-search scratch ------------------------------------------------------

// searchScratch pools the engine's per-search slabs so steady-state
// searches allocate no heap, batch or band backing arrays — and, through
// the embedded CheckScratch, no checker caches, distribution atoms or flow
// networks either.
type searchScratch struct {
	heap  searchHeap
	batch []searchItem
	band  []*uncertain.Object
	check CheckScratch
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// clear empties every slot (so a recycled scratch doesn't pin objects from
// finished searches) while keeping the backing arrays for reuse.
func (sc *searchScratch) clear() {
	for i := range sc.heap.s {
		sc.heap.s[i] = searchItem{}
	}
	sc.heap.s = sc.heap.s[:0]
	for i := range sc.batch {
		sc.batch[i] = searchItem{}
	}
	sc.batch = sc.batch[:0]
	for i := range sc.band {
		sc.band[i] = nil
	}
	sc.band = sc.band[:0]
	sc.check.reset()
}

// release clears the scratch and returns it to the pool.
func (sc *searchScratch) release() {
	sc.clear()
	scratchPool.Put(sc)
}

// --- the engine --------------------------------------------------------------

// SearchBackend runs Algorithm 1 over any Backend: a best-first traversal
// of the global R-tree in non-decreasing min-distance order, testing each
// reached object against the k-skyband found so far and pruning entries
// whose every object is MBR-dominated by k existing candidates
// (Theorem 4). Objects are re-keyed by their exact min(U_Q) before
// evaluation — and exact-key ties are evaluated as one batch — so the
// transitivity-based correctness argument of Section 5.2 applies.
//
// The context is checked once per heap pop and once per candidate
// emission; on cancellation the partial Result (with timing, dominance
// and I/O statistics up to that point) is returned together with
// ctx.Err(). A hard backend storage error aborts the search and is
// returned with a nil Result — but an unavailable read (a quarantined
// page, matching faults.ErrUnavailable) degrades instead of aborting: the
// unreadable subtree or object is skipped, the traversal continues, and
// the completed Result is returned together with a *PartialResultError
// recording what was skipped, so a degraded answer is always flagged and
// never silently short. SearchOptions.Limit truncates the search after
// that many candidates; because emission is progressive, the truncated
// prefix equals the same prefix of the full search.
func SearchBackend(ctx context.Context, b Backend, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	if k < 1 {
		panic("core: SearchBackend requires k >= 1")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	m := opts.metric()
	res := &Result{Operator: op}
	qmbr := q.MBR()
	ioBase := b.AccessStats()

	root, err := b.Root()
	if err != nil {
		return nil, err
	}

	// A batch worker arrives with its own scratch pinned in the context
	// (see SearchParallelOpts): that scratch backs every query the worker
	// runs, with no pool traffic and no cross-core arena migration.
	// Single-shot searches fall back to the shared pool.
	sc, pinned := pinnedScratch(ctx)
	if !pinned {
		sc = scratchPool.Get().(*searchScratch)
	}
	if ds, ok := b.(DenseIDSpanner); ok {
		sc.check.setDenseSpan(ds.DenseIDSpan())
	}
	checker := sc.check.Checker(q, op, opts.Filters, m)
	h := &sc.heap
	batch := sc.batch
	band := sc.band
	defer func() {
		sc.batch = batch
		sc.band = band
		if pinned {
			sc.clear() // the batch worker keeps it for its next query
		} else {
			sc.release()
		}
	}()

	finish := func() {
		res.Elapsed = time.Since(start)
		res.Stats = checker.Stats
		res.IO = b.AccessStats().Sub(ioBase)
	}

	// The root is pushed with key 0 — a trivially valid lower bound, and
	// irrelevant anyway since it is the only item when it pops.
	h.push(searchItem{kind: kindNode, node: root})

	var expandErr error
	// partial accumulates unavailable reads (quarantined pages); non-nil
	// means the search completed in degraded mode.
	var partial *PartialResultError
	degrade := func(err error, node bool) {
		if partial == nil {
			partial = &PartialResultError{}
		}
		partial.note(err, node)
	}
	// visit keys each child entry by its MBR's min distance; one closure
	// for the whole search.
	visit := func(e BackendEntry) {
		key := m.RectMinDist(e.Rect, qmbr)
		if e.IsNode {
			h.push(searchItem{key: key, kind: kindNode, rect: e.Rect, node: e.Node})
		} else {
			h.push(searchItem{key: key, kind: kindObjLB, rect: e.Rect, obj: e.Obj})
		}
	}
	// expand handles non-exact items, pushing their successors. Node
	// pruning happens at pop time — the band only grows, so testing late
	// prunes strictly more than testing at push. Object entries are never
	// MBR-pruned: rectLE tests domination against the query instances,
	// which for F+SD (defined on the whole query MBR) is weaker than the
	// operator's own dominance test, so every reached object must get the
	// full instance-level evaluation to keep candidate sets exact.
	expand := func(it searchItem) {
		switch it.kind {
		case kindNode:
			if bandDominatesRect(checker, band, it.rect, k) {
				checker.Stats.EntryPrunes++
				return
			}
			if err := b.Expand(it.node, visit); err != nil {
				if faults.IsUnavailable(err) {
					degrade(err, true)
					return
				}
				expandErr = err
			}
		case kindObjLB:
			o, err := b.Resolve(it.obj)
			if err != nil {
				if faults.IsUnavailable(err) {
					degrade(err, false)
					return
				}
				expandErr = err
				return
			}
			// Re-key by the exact min pair distance so objects are
			// evaluated in true min(U_Q) order.
			h.push(searchItem{key: checker.minPairDist(o), kind: kindObjExact, obj: ObjRef{Obj: o}})
		}
	}

	for h.len() > 0 {
		if ctx.Err() != nil {
			finish()
			return res, ctx.Err()
		}
		it := h.pop()
		checker.Stats.HeapPops++
		if it.kind != kindObjExact {
			expand(it)
			if expandErr != nil {
				return nil, expandErr
			}
			continue
		}
		// Drain every item whose key ties the batch key: tied exact items
		// join the batch; tied nodes/LBs may still produce tied exacts.
		batch = batch[:0]
		batch = append(batch, it)
		limit := it.key + tieEps
		for h.len() > 0 && h.peekKey() <= limit {
			nxt := h.pop()
			checker.Stats.HeapPops++
			if nxt.kind == kindObjExact {
				batch = append(batch, nxt)
			} else {
				expand(nxt)
				if expandErr != nil {
					return nil, expandErr
				}
			}
		}
		// Evaluate the batch: dominators are counted over the pre-batch
		// band plus the other batch members (see the header comment for
		// why that is the exact dominator count). Batch members emitted
		// into the band during this batch must not be counted twice, so
		// the band scan stops at its pre-batch length.
		preBand := len(band)
		for _, bi := range batch {
			if ctx.Err() != nil {
				finish()
				return res, ctx.Err()
			}
			obj := bi.obj.Obj
			res.Examined++
			dominators := 0
			for i, u := range band[:preBand] {
				if checker.Dominates(u, obj) {
					dominators++
					if dominators == 1 && i > 0 {
						// Move-to-front: a dominator tends to dominate the
						// following objects too.
						copy(band[1:i+1], band[:i])
						band[0] = u
					}
					if dominators >= k {
						break
					}
				}
			}
			if dominators < k {
				for _, other := range batch {
					if other.obj.Obj != obj && checker.Dominates(other.obj.Obj, obj) {
						dominators++
						if dominators >= k {
							break
						}
					}
				}
			}
			if dominators >= k {
				continue
			}
			band = append(band, obj)
			cand := Candidate{
				Object:     obj,
				Rank:       len(res.Candidates),
				MinDist:    bi.key,
				Elapsed:    time.Since(start),
				Dominators: dominators,
			}
			res.Candidates = append(res.Candidates, cand)
			if opts.OnCandidate != nil {
				opts.OnCandidate(cand)
			}
			if opts.Limit > 0 && len(res.Candidates) >= opts.Limit {
				finish()
				return res, partialOrNil(partial, res)
			}
		}
	}
	finish()
	return res, partialOrNil(partial, res)
}

// partialOrNil finalizes a degraded search's error: nil for a clean run,
// the populated *PartialResultError otherwise.
func partialOrNil(partial *PartialResultError, res *Result) error {
	if partial == nil {
		return nil
	}
	partial.Result = res
	res.Incomplete = true
	return partial
}

// bandDominatesRect reports whether at least k current candidates strictly
// MBR-dominate the whole entry rectangle, in which case every object in
// the subtree has >= k dominators and the entry can be discarded
// (Theorem 4 applied to the k-skyband).
func bandDominatesRect(c *Checker, band []*uncertain.Object, r geom.Rect, k int) bool {
	count := 0
	for _, u := range band {
		if le, strict := c.rectLE(u.MBR(), r); le && strict {
			count++
			if count >= k {
				return true
			}
		}
	}
	return false
}

// StreamBackend runs the progressive search over any Backend in a
// goroutine and returns a channel that yields each candidate the moment it
// is proven undominated. The channel is closed when the search completes,
// the context is canceled (cancellation now aborts the traversal itself,
// not just the next emission), or the backend fails. The final Result is
// delivered on the second channel, which receives exactly one value unless
// the search was canceled or errored.
func StreamBackend(ctx context.Context, b Backend, q *uncertain.Object, op Operator, opts SearchOptions) (<-chan Candidate, <-chan *Result) {
	out := make(chan Candidate)
	done := make(chan *Result, 1)
	go func() {
		defer close(out)
		defer close(done)
		inner := opts
		inner.OnCandidate = func(c Candidate) {
			select {
			case out <- c:
				if opts.OnCandidate != nil {
					opts.OnCandidate(c)
				}
			case <-ctx.Done():
			}
		}
		res, err := SearchBackend(ctx, b, q, op, 1, inner)
		if _, isPartial := AsPartial(err); (err == nil || isPartial) && res != nil {
			// A degraded search still completed its traversal; the caller
			// distinguishes it by checking the error separately if needed.
			done <- res
		}
	}()
	return out, done
}
