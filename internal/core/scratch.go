package core

import (
	"spatialdom/internal/distr"
	"spatialdom/internal/flow"
	"spatialdom/internal/geom"
	"spatialdom/internal/slab"
	"spatialdom/internal/uncertain"
)

// CheckScratch is the allocation arena behind a Checker: slab arenas for
// every cached artifact a search builds (distribution atoms, hull-distance
// matrices, per-object caches, level bounds), reusable flow networks for
// the P-SD solves, and the dense object-cache table. One scratch backs one
// live Checker at a time; Checker re-initializes it, releasing everything
// the previous search cached. The engine pools these alongside its other
// per-search scratch, which is what makes steady-state searches
// allocation-free: every slab and table reaches its high-water size and is
// then recycled verbatim.
//
// A CheckScratch is not safe for concurrent use.
type CheckScratch struct {
	// Arenas for plain-old-data caches: recycled without clearing, their
	// contents are fully overwritten before use.
	pairs     distr.PairArena
	floats    slab.Arena[float64]
	rows      slab.Arena[[]float64]
	dists     slab.Arena[distr.Distribution]
	distPairs slab.Arena[[2]distr.Distribution]
	stats     slab.Arena[[3]float64]

	// Arenas whose elements hold pointers (objects, local-tree nodes):
	// cleared on reset so a pooled scratch never pins a finished search's
	// object graph.
	caches    slab.Arena[objCache]
	levels    slab.Arena[levelBounds]
	levelPtrs slab.Arena[*levelBounds]

	// Object-cache table: IDs inside [0, len(dense)) hit the slice,
	// everything else falls back to the map. touched records the dense
	// slots in use so reset clears them without sweeping the whole table.
	dense   []*objCache
	touched []int
	sparse  map[int]*objCache

	// Flow-network arenas for P-SD: the exact instance network and the
	// per-level G⁻/G⁺ pair, each rebuilt in place via Reuse.
	exact, gMinus, gPlus flow.Network

	// Assorted reusable buffers.
	adm     []admEdge    // admissible-edge records of the exact network
	lo, hi  geom.Point   // range-query corners in hull-distance space
	ids     []int        // CollectIDs scratch for level masses
	hullIdx []int        // non-geometric fallback hull index list
	hullPts []geom.Point // hull instances of the current query

	checker Checker
}

// maxDenseSpan caps the dense table: backends reporting a larger ID span
// stay on the map so one scratch never holds a giant pointer table.
const maxDenseSpan = 1 << 22

// setDenseSpan sizes the dense object-cache table for IDs in [0, n).
func (sc *CheckScratch) setDenseSpan(n int) {
	if n <= 0 || n > maxDenseSpan {
		return
	}
	if cap(sc.dense) < n {
		sc.dense = make([]*objCache, n)
	}
	sc.dense = sc.dense[:n]
}

// reset releases everything cached by the current checker so the scratch
// can back a new search. Pointer-bearing arenas are zeroed; POD arenas are
// recycled as-is.
func (sc *CheckScratch) reset() {
	sc.pairs.Reset()
	sc.floats.Reset()
	sc.rows.Reset()
	sc.dists.Reset()
	sc.distPairs.Reset()
	sc.stats.Reset()
	sc.caches.ResetZero()
	sc.levels.ResetZero()
	sc.levelPtrs.ResetZero()
	for _, id := range sc.touched {
		sc.dense[id] = nil
	}
	sc.touched = sc.touched[:0]
	clear(sc.sparse)
	sc.adm = sc.adm[:0]
	clear(sc.hullPts[:cap(sc.hullPts)]) // drop references to the previous query
}

// newObjCache carves a zeroed per-object cache out of the arena.
func (sc *CheckScratch) newObjCache(o *uncertain.Object) *objCache {
	oc := &sc.caches.AllocZeroed(1)[0]
	oc.obj = o
	return oc
}

// Checker re-initializes the scratch for a new search and returns its
// checker, configured like NewCheckerMetric. The returned checker borrows
// every buffer from the scratch: it is valid until the next Checker call,
// and at most one checker per scratch is live at a time.
func (sc *CheckScratch) Checker(query *uncertain.Object, op Operator, cfg FilterConfig, m geom.Metric) *Checker {
	sc.reset()
	c := &sc.checker
	//nnc:allow scratch-escape: c is sc.checker, a field of the scratch itself; the back-pointer dies with the scratch
	c.scratch = sc
	c.query = query
	c.op = op
	c.cfg = cfg
	c.eps = distr.Eps
	c.metric = m
	c.euclid = m == geom.Euclidean
	c.qMBR = query.MBR()
	c.Stats = Stats{}
	if c.cmpFn == nil {
		// One closure for the scratch's lifetime: c is a stable pointer
		// into sc, so the counter always targets the live search's stats.
		c.cmpFn = func() { c.Stats.InstanceComparisons++ }
	}
	if cfg.Geometric && c.euclid {
		c.hullIdx = query.HullIndices()
	} else {
		sc.hullIdx = growInts(sc.hullIdx, query.Len())
		for i := range sc.hullIdx {
			sc.hullIdx[i] = i
		}
		c.hullIdx = sc.hullIdx
	}
	sc.hullPts = growPoints(sc.hullPts, len(c.hullIdx))
	for i, j := range c.hullIdx {
		sc.hullPts[i] = query.Instance(j)
	}
	c.hullPts = sc.hullPts
	return c
}

// growInts returns s resized to n, reusing its capacity.
//
//nnc:coldpath amortized buffer growth to the search's high-water size; warm calls reslice
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growPoints returns s resized to n, reusing its capacity.
//
//nnc:coldpath amortized buffer growth to the search's high-water size; warm calls reslice
func growPoints(s []geom.Point, n int) []geom.Point {
	if cap(s) < n {
		return make([]geom.Point, n)
	}
	return s[:n]
}

// growFloats returns s resized to n, reusing its capacity.
//
//nnc:coldpath amortized buffer growth to the search's high-water size; warm calls reslice
func growFloats(s geom.Point, n int) geom.Point {
	if cap(s) < n {
		return make(geom.Point, n)
	}
	return s[:n]
}
