package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// allocObjs builds a deterministic little workload: a query plus objects
// with enough instances to exercise distributions, level bounds and the
// P-SD flow networks.
func allocObjs(n, m int, seed int64) (q *uncertain.Object, objs []*uncertain.Object) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(id int, cx, cy float64) *uncertain.Object {
		pts := make([]geom.Point, m)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.Float64()*4, cy + rng.Float64()*4}
		}
		return uncertain.MustNew(id, pts, nil)
	}
	q = mk(1000, 50, 50)
	for i := 0; i < n; i++ {
		objs = append(objs, mk(i, rng.Float64()*100, rng.Float64()*100))
	}
	return q, objs
}

// Warm dominance checks — every cache already built, every slab already
// grown — must not allocate, for any operator. This is the tentpole's
// regression guard: a future change that re-introduces a per-check
// allocation fails here before it shows up in benchmarks.
func TestWarmCheckZeroAllocs(t *testing.T) {
	q, objs := allocObjs(12, 10, 7)
	for _, op := range Operators {
		t.Run(op.String(), func(t *testing.T) {
			var sc CheckScratch
			c := sc.Checker(q, op, AllFilters, geom.Euclidean)
			run := func() {
				for i, u := range objs {
					for j, v := range objs {
						if i != j {
							c.Dominates(u, v)
						}
					}
				}
			}
			run() // warm: build caches, grow slabs and networks
			if avg := testing.AllocsPerRun(20, run); avg != 0 {
				t.Errorf("warm %s checks allocated %.1f times per round, want 0", op, avg)
			}
		})
	}
}

// A warm checker re-initialized from its scratch (the per-search reset the
// engine performs) must also run allocation-free: the reset recycles slabs
// rather than discarding them.
func TestWarmSearchResetZeroAllocs(t *testing.T) {
	q, objs := allocObjs(10, 8, 11)
	var sc CheckScratch
	sc.setDenseSpan(64)
	round := func() {
		for _, op := range Operators {
			c := sc.Checker(q, op, AllFilters, geom.Euclidean)
			for i, u := range objs {
				for j, v := range objs {
					if i != j {
						c.Dominates(u, v)
					}
				}
			}
		}
	}
	round()
	round() // second round reaches the high-water marks everywhere
	if avg := testing.AllocsPerRun(10, round); avg != 0 {
		t.Errorf("warm reset+check rounds allocated %.1f times, want 0", avg)
	}
}

// Equivalence: a checker backed by one long-lived scratch (arena path,
// dense cache table) must return exactly the verdicts of a fresh checker
// per pair (the naive allocation path, map-backed cache), for every
// operator, on tie-heavy quick-generated inputs.
func TestQuickArenaNaiveEquivalence(t *testing.T) {
	for _, op := range Operators {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			var sc CheckScratch
			sc.setDenseSpan(16)
			f := func(ru, rv, rq rawObj) bool {
				q := rq.object(0)
				u := ru.object(1)
				v := rv.object(2)
				arena := sc.Checker(q, op, AllFilters, geom.Euclidean)
				got := arena.Dominates(u, v)
				gotRev := arena.Dominates(v, u)
				naive := NewChecker(q, op, AllFilters)
				want := naive.Dominates(u, v)
				wantRev := naive.Dominates(v, u)
				if got != want || gotRev != wantRev {
					t.Logf("op=%s got=(%v,%v) want=(%v,%v)\nq=%v\nu=%v\nv=%v",
						op, got, gotRev, want, wantRev, q, u, v)
					return false
				}
				return true
			}
			if err := quick.Check(f, quickCfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Dense-table and map-backed object caches must be interchangeable: the
// same workload run with IDs inside and outside the dense span yields
// identical verdicts.
func TestDenseSparseCacheEquivalence(t *testing.T) {
	q, objs := allocObjs(10, 8, 23)
	// Shifted copies with IDs far outside any dense span.
	shifted := make([]*uncertain.Object, len(objs))
	for i, o := range objs {
		shifted[i] = uncertain.MustNew(o.ID()+maxDenseSpan+100, o.Points(), nil)
	}
	for _, op := range Operators {
		var dense, sparse CheckScratch
		dense.setDenseSpan(len(objs))
		cd := dense.Checker(q, op, AllFilters, geom.Euclidean)
		cs := sparse.Checker(q, op, AllFilters, geom.Euclidean)
		for i := range objs {
			for j := range objs {
				if i == j {
					continue
				}
				if got, want := cd.Dominates(objs[i], objs[j]), cs.Dominates(shifted[i], shifted[j]); got != want {
					t.Fatalf("%s: dense=%v sparse=%v for pair (%d,%d)", op, got, want, i, j)
				}
			}
		}
	}
}

// The engine's pooled scratch must not leak state between searches: the
// same query repeated against the same index returns identical candidates,
// and interleaved different queries don't perturb each other.
func TestPooledScratchSearchStability(t *testing.T) {
	qa, objs := allocObjs(40, 6, 31)
	qb, _ := allocObjs(1, 6, 77)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range Operators {
		base := idx.Search(qa, op).IDs()
		for round := 0; round < 5; round++ {
			idx.Search(qb, op) // interleave a different query through the pool
			got := idx.Search(qa, op).IDs()
			if fmt.Sprint(got) != fmt.Sprint(base) {
				t.Fatalf("%s round %d: candidates %v, want %v", op, round, got, base)
			}
		}
	}
}
