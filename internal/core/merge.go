package core

// Cross-shard merge for the scatter-gather router (internal/cluster).
//
// Merge invariant. Partition the dataset D into shards D_1..D_N. For any
// query Q, operator, and k, let band_i be the k-skyband of D_i (the
// objects of D_i with fewer than k dominators within D_i) and let
// U = band_1 ∪ .. ∪ band_N. Then
//
//	k-skyband(D) = k-skyband(U),
//
// and every emitted candidate's dominator count over U equals its count
// over D. Proof sketch, resting on the same transitivity chain that makes
// Algorithm 1 correct (Section 5.2 / Theorem 4 of the paper):
//
//  1. Containment. If V ∈ k-skyband(D) then V has < k dominators in all
//     of D, hence < k within its own shard, so V ∈ U. Conversely an
//     object with ≥ k dominators in D cannot enter k-skyband(U) —
//     order V's dominator poset by any linear extension; its first k
//     elements each have < k dominators themselves (a dominator of a
//     dominator of X dominates X by transitivity, so anything dominating
//     one of the first k would precede it), hence all k are global — and
//     therefore per-shard — skyband members, i.e. they are all in U.
//  2. Exact counts. The same argument shows every dominator of an
//     emitted candidate is itself in U: a dominator W of V satisfies
//     min(W_Q) ≤ min(V_Q) (statistic necessity) and, were W outside U,
//     W would have ≥ k dominators in its shard, which by transitivity
//     all dominate V too — contradicting V's < k count. So counting
//     over U counts exactly the dominators counted over D.
//
// Determinism. MergeShardBands orders U by the same exact
// min-pair-distance key the engine re-keys objects with, drains key ties
// into one batch under the same tieEps, and counts dominators over
// pre-batch band ∪ batch exactly like the engine — so the merged Result
// is equal to the single-node Result candidate-for-candidate: same IDs,
// same ranks, same MinDist bits, same Dominators. The one permitted
// difference is emission order *within* an exact-key tie batch (single
// node follows heap pop order, the merge sorts ties by object ID);
// dominator counts are batch-order-independent by construction, and on
// continuous workloads exact-key ties between distinct objects have
// measure zero. The conformance suite asserts full byte-equality on such
// workloads and tie-set equality otherwise.

import (
	"context"
	"sort"
	"time"

	"spatialdom/internal/uncertain"
)

// mergeItem is one union member keyed by its exact min pair distance.
type mergeItem struct {
	obj *uncertain.Object
	key float64
}

// byKeyThenID is the merge's typed sort (the hot packages ban
// reflection-based sort.Slice): ascending key, object ID breaking ties.
type byKeyThenID []mergeItem

func (s byKeyThenID) Len() int { return len(s) }
func (s byKeyThenID) Less(i, j int) bool {
	if s[i].key != s[j].key {
		return s[i].key < s[j].key
	}
	return s[i].obj.ID() < s[j].obj.ID()
}
func (s byKeyThenID) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// MergeShardBands computes the global k-skyband from per-shard k-skyband
// candidate sets, replicating the single-node engine's evaluation order
// and dominator accounting (see the file header for the invariant and its
// proof sketch). bands holds one slice per responding shard; objects are
// deduplicated by ID, so hedged duplicate answers are harmless. The
// context is checked once per candidate evaluation; opts.Limit and
// opts.OnCandidate behave as in SearchBackend. Examined reports the size
// of the deduplicated union.
func MergeShardBands(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions, bands [][]*uncertain.Object) (*Result, error) {
	if k < 1 {
		panic("core: MergeShardBands requires k >= 1")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &Result{Operator: op}
	checker := NewCheckerMetric(q, op, opts.Filters, opts.metric())

	seen := make(map[int]bool)
	union := make([]mergeItem, 0, 64)
	for _, band := range bands {
		for _, o := range band {
			if o == nil || seen[o.ID()] {
				continue
			}
			seen[o.ID()] = true
			union = append(union, mergeItem{obj: o, key: checker.MinPairDist(o)})
		}
	}
	// Ascending exact key — the engine's evaluation order. ID breaks exact
	// ties deterministically; within a batch the tie order does not affect
	// dominator counts (they are counted over band ∪ batch).
	sort.Sort(byKeyThenID(union))

	finish := func() {
		res.Elapsed = time.Since(start)
		res.Stats = checker.Stats
	}

	band := make([]*uncertain.Object, 0, k)
	for lo := 0; lo < len(union); {
		// Drain the tie batch exactly like the engine: everything whose key
		// lies within tieEps of the batch head.
		hi := lo + 1
		limit := union[lo].key + tieEps
		for hi < len(union) && union[hi].key <= limit {
			hi++
		}
		batch := union[lo:hi]
		preBand := len(band)
		for _, bi := range batch {
			if ctx.Err() != nil {
				finish()
				return res, ctx.Err()
			}
			obj := bi.obj
			res.Examined++
			dominators := 0
			for i, u := range band[:preBand] {
				if checker.Dominates(u, obj) {
					dominators++
					if dominators == 1 && i > 0 {
						// Move-to-front, as in the engine: a dominator tends
						// to dominate the following objects too.
						copy(band[1:i+1], band[:i])
						band[0] = u
					}
					if dominators >= k {
						break
					}
				}
			}
			if dominators < k {
				for _, other := range batch {
					if other.obj != obj && checker.Dominates(other.obj, obj) {
						dominators++
						if dominators >= k {
							break
						}
					}
				}
			}
			if dominators >= k {
				continue
			}
			band = append(band, obj)
			cand := Candidate{
				Object:     obj,
				Rank:       len(res.Candidates),
				MinDist:    bi.key,
				Elapsed:    time.Since(start),
				Dominators: dominators,
			}
			res.Candidates = append(res.Candidates, cand)
			if opts.OnCandidate != nil {
				opts.OnCandidate(cand)
			}
			if opts.Limit > 0 && len(res.Candidates) >= opts.Limit {
				finish()
				return res, nil
			}
		}
		lo = hi
	}
	finish()
	return res, nil
}
