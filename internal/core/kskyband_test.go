package core

import (
	"math/rand"
	"sort"
	"testing"

	"spatialdom/internal/nnfunc"
)

func TestSearchKEqualsSearchAtK1(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for iter := 0; iter < 8; iter++ {
		objs := randDataset(rng, 40, 2, 5, 80)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 80), 4)
		for _, op := range Operators {
			a := idx.Search(q, op).IDs()
			b := idx.SearchK(q, op, 1).IDs()
			sort.Ints(a)
			sort.Ints(b)
			if len(a) != len(b) {
				t.Fatalf("%v: k=1 gives %v, Search gives %v", op, b, a)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: k=1 mismatch", op)
				}
			}
		}
	}
}

func TestSearchKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for iter := 0; iter < 10; iter++ {
		objs := randDataset(rng, 35, 2, 5, 80)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 80), 4)
		for _, op := range []Operator{SSD, SSSD, PSD, FSD} {
			for _, k := range []int{1, 2, 3, 5} {
				want := idsOf(BruteForceK(objs, q, op, k, AllFilters))
				res := idx.SearchK(q, op, k)
				got := res.IDs()
				sort.Ints(got)
				if len(got) != len(want) {
					t.Fatalf("iter %d %v k=%d: got %v, want %v", iter, op, k, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("iter %d %v k=%d: got %v, want %v", iter, op, k, got, want)
					}
				}
				for _, c := range res.Candidates {
					if c.Dominators >= k {
						t.Fatalf("candidate with %d >= k dominators", c.Dominators)
					}
				}
			}
		}
	}
}

// k-skybands nest in k.
func TestSearchKMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	objs := randDataset(rng, 50, 2, 5, 80)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 80), 4)
	prev := map[int]bool{}
	for _, k := range []int{1, 2, 3, 4, 8} {
		cur := map[int]bool{}
		for _, id := range idx.SearchK(q, SSSD, k).IDs() {
			cur[id] = true
		}
		for id := range prev {
			if !cur[id] {
				t.Fatalf("k-skyband not monotone: %d in k-1 band but not k=%d", id, k)
			}
		}
		prev = cur
	}
}

// The top-k objects of every covered function must be k-NN candidates.
func TestSearchKContainsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	objs := randDataset(rng, 40, 2, 5, 60)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 60), 3)
	const k = 3
	band := map[int]bool{}
	for _, id := range idx.SearchK(q, PSD, k).IDs() {
		band[id] = true
	}
	suites := nnfunc.AllSuites()
	for _, fam := range []nnfunc.Family{nnfunc.N1, nnfunc.N3} {
		for _, f := range suites[fam] {
			ranked := nnfunc.Ranking(objs, q, f)
			for i := 0; i < k; i++ {
				if !band[ranked[i].ID()] {
					t.Fatalf("top-%d under %s (object %d at rank %d) missing from %d-skyband",
						k, f.Name(), ranked[i].ID(), i, k)
				}
			}
		}
	}
}

func TestSearchKPanicsOnBadK(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	objs := randDataset(rng, 5, 2, 3, 20)
	idx, _ := NewIndex(objs)
	q := randObject(rng, 0, 2, 2, randCenter(rng, 2, 20), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.SearchK(q, SSD, 0)
}
