package core

import (
	"spatialdom/internal/distr"
	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// This file implements the level-by-level pruning/validation of Section 5.1
// ("L" in the Appendix C ablation): dominance checks are first attempted
// against coarse virtual instances — the nodes of the objects' local R-trees
// — and only fall through to the exact instance-level algorithms when the
// coarse level is inconclusive.
//
// For the stochastic operators, a local-tree level yields two bounding
// distributions per object: LB replaces every instance distance by the
// node's MinDist (so LB ≤st U_Q) and UB by the node's MaxDist (so
// U_Q ≤st UB). Then
//
//	UB(U) ≤st LB(V)  (and UB(U) ≠ LB(V))  ⇒  SD holds (validation),
//	¬( LB(U) ≤st UB(V) )                  ⇒  SD fails (pruning).
//
// The ≠ side condition follows because if U_Q = V_Q the whole chain
// U_Q ≤st UB(U) ≤st LB(V) ≤st V_Q collapses to equality.

// levelBounds caches the bounding distributions of one object at one local
// R-tree level.
type levelBounds struct {
	lbQ, ubQ distr.Distribution      // w.r.t. the whole query (S-SD)
	perQ     [][2]distr.Distribution // (lb, ub) per query instance (SS-SD)
	perQOK   bool
	nodes    []*rtree.Node
	masses   []float64
}

// maxCoarseLevel bounds how many coarse levels are attempted before the
// exact scan; local trees have fanout 4, so level 3 already holds up to 64
// virtual instances.
const maxCoarseLevel = 3

// levelInfo returns the cached level bounds of object o at the given local
// tree level, constructing the S-SD bounds eagerly. Every buffer — the
// bounds struct, the level-pointer table, masses and bound atoms — comes
// from the checker's scratch arenas.
func (c *Checker) levelInfo(o *objCache, level int) *levelBounds {
	if o.levels == nil {
		o.levels = c.scratch.levelPtrs.AllocZeroed(maxCoarseLevel + 1)
	}
	if o.levels[level] != nil {
		return o.levels[level]
	}
	tree := o.obj.LocalTree()
	nodes := tree.NodesAtLevel(level)
	lb := &c.scratch.levels.AllocZeroed(1)[0]
	lb.nodes = nodes
	lb.masses = c.scratch.floats.Alloc(len(nodes))
	scratch := c.scratch.ids[:0]
	for i, n := range nodes {
		scratch = n.CollectIDs(scratch[:0])
		var mass float64
		for _, id := range scratch {
			mass += o.obj.Prob(id)
		}
		lb.masses[i] = mass
	}
	c.scratch.ids = scratch[:0] // retain capacity growth
	// S-SD bounds: one atom per (node, query instance).
	lbPairs := c.scratch.pairs.Alloc(len(nodes) * c.query.Len())
	ubPairs := c.scratch.pairs.Alloc(len(nodes) * c.query.Len())
	w := 0
	for i, n := range nodes {
		r := n.Rect()
		for j := 0; j < c.query.Len(); j++ {
			q := c.query.Instance(j)
			p := c.query.Prob(j) * lb.masses[i]
			lbPairs[w] = distr.Pair{Dist: c.metric.MinDistRect(q, r), Prob: p}
			ubPairs[w] = distr.Pair{Dist: c.metric.MaxDistRect(q, r), Prob: p}
			w++
		}
	}
	c.Stats.InstanceComparisons += int64(2 * len(nodes) * c.query.Len())
	lb.lbQ = ownNonNeg(lbPairs)
	lb.ubQ = ownNonNeg(ubPairs)
	o.levels[level] = lb
	return lb
}

// ownNonNeg wraps arena-built bound atoms as a distribution, dropping
// zero-probability atoms exactly as the previous MustFromPairs path did
// (zero-mass local-tree nodes contribute nothing).
func ownNonNeg(pairs []distr.Pair) distr.Distribution {
	w := 0
	for _, p := range pairs {
		if p.Prob > 0 {
			pairs[w] = p
			w++
		}
	}
	return distr.Own(pairs[:w])
}

// levelPerQ lazily builds the per-query-instance bounds at a level.
func (c *Checker) levelPerQ(o *objCache, level int) *levelBounds {
	lb := c.levelInfo(o, level)
	if lb.perQOK {
		return lb
	}
	lb.perQ = c.scratch.distPairs.Alloc(c.query.Len())
	for j := 0; j < c.query.Len(); j++ {
		q := c.query.Instance(j)
		lo := c.scratch.pairs.Alloc(len(lb.nodes))
		hi := c.scratch.pairs.Alloc(len(lb.nodes))
		for i, n := range lb.nodes {
			r := n.Rect()
			lo[i] = distr.Pair{Dist: c.metric.MinDistRect(q, r), Prob: lb.masses[i]}
			hi[i] = distr.Pair{Dist: c.metric.MaxDistRect(q, r), Prob: lb.masses[i]}
		}
		lb.perQ[j] = [2]distr.Distribution{ownNonNeg(lo), ownNonNeg(hi)}
	}
	c.Stats.InstanceComparisons += int64(2 * len(lb.nodes) * c.query.Len())
	lb.perQOK = true
	return lb
}

// coarseLevels returns the sequence of levels worth attempting for a pair
// of objects: from 1 (children of the local roots) up to one short of the
// shallower tree's leaf level, capped at maxCoarseLevel.
func coarseLevels(u, v *objCache) int {
	hu := u.obj.LocalTree().Height()
	hv := v.obj.LocalTree().Height()
	h := hu
	if hv < h {
		h = hv
	}
	h-- // never run the "coarse" pass at the exact leaf level
	if h > maxCoarseLevel {
		h = maxCoarseLevel
	}
	return h
}

// levelDecideSSD attempts to decide S-SD(u, v, Q) at coarse local-tree
// levels. ok is false when every attempted level is inconclusive and the
// caller must fall through to the exact scan.
func (c *Checker) levelDecideSSD(u, v *uncertain.Object) (dec, ok bool) {
	cu, cv := c.cacheOf(u), c.cacheOf(v)
	maxLvl := coarseLevels(cu, cv)
	for lvl := 1; lvl <= maxLvl; lvl++ {
		bu := c.levelInfo(cu, lvl)
		bv := c.levelInfo(cv, lvl)
		// Pruning: LB(U) ≤st UB(V) is necessary for U_Q ≤st V_Q.
		if !distr.StochasticLE(bu.lbQ, bv.ubQ, c.eps, c.cmp()) {
			return false, true
		}
		// Validation: UB(U) ≤st LB(V) with strictness somewhere.
		if distr.StochasticLE(bu.ubQ, bv.lbQ, c.eps, c.cmp()) &&
			!distr.Equal(bu.ubQ, bv.lbQ, c.eps) {
			return true, true
		}
	}
	return false, false
}

// levelDecideSSSD attempts to decide SS-SD(u, v, Q) at coarse local-tree
// levels, applying the per-query-instance bounds.
func (c *Checker) levelDecideSSSD(u, v *uncertain.Object) (dec, ok bool) {
	cu, cv := c.cacheOf(u), c.cacheOf(v)
	maxLvl := coarseLevels(cu, cv)
	for lvl := 1; lvl <= maxLvl; lvl++ {
		bu := c.levelPerQ(cu, lvl)
		bv := c.levelPerQ(cv, lvl)
		valid := true
		strict := false
		for j := range bu.perQ {
			if !distr.StochasticLE(bu.perQ[j][0], bv.perQ[j][1], c.eps, c.cmp()) {
				return false, true // pruning at instance j
			}
			if valid {
				if !distr.StochasticLE(bu.perQ[j][1], bv.perQ[j][0], c.eps, c.cmp()) {
					valid = false
				} else if !distr.Equal(bu.perQ[j][1], bv.perQ[j][0], c.eps) {
					strict = true
				}
			}
		}
		if valid && strict {
			return true, true
		}
	}
	return false, false
}
