package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"spatialdom/internal/geom"
	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// Index organizes a set of objects for NN-candidate search: object MBRs in
// a global R-tree (page-derived fanout, as in Section 6) plus an ID lookup.
// An Index is immutable after construction and safe for concurrent
// searches; each Search uses its own Checker.
type Index struct {
	objects map[int]*uncertain.Object
	list    []*uncertain.Object
	tree    *rtree.Tree
	dim     int
	// denseSpan is max(ID)+1 when every object ID is non-negative (so IDs
	// fit a directly indexed cache table), 0 otherwise.
	denseSpan int
}

// GlobalPageBytes is the usable page payload the global R-tree fanout is
// derived from: the paper's 4096-byte physical page minus the pager's
// 8-byte per-page integrity trailer. Deriving fanout from the payload
// keeps the in-memory tree node-for-node identical to the disk-resident
// one — the backend-conformance invariant the diskindex suite asserts.
const GlobalPageBytes = 4096 - 8

// Errors returned by NewIndex.
var (
	ErrNoObjects   = errors.New("core: index needs at least one object")
	ErrDuplicateID = errors.New("core: duplicate object ID")
	ErrIndexDimMix = errors.New("core: objects disagree in dimensionality")
)

// NewIndex builds an index over the given objects. Object IDs must be
// unique and dimensionalities must agree.
func NewIndex(objs []*uncertain.Object) (*Index, error) {
	if len(objs) == 0 {
		return nil, ErrNoObjects
	}
	dim := objs[0].Dim()
	byID := make(map[int]*uncertain.Object, len(objs))
	entries := make([]rtree.Entry, len(objs))
	span := 0
	for i, o := range objs {
		if o.Dim() != dim {
			return nil, fmt.Errorf("%w: object %d has dim %d, want %d", ErrIndexDimMix, o.ID(), o.Dim(), dim)
		}
		if _, dup := byID[o.ID()]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateID, o.ID())
		}
		byID[o.ID()] = o
		entries[i] = rtree.Entry{Rect: o.MBR(), ID: o.ID()}
		switch {
		case o.ID() < 0:
			span = -1
		case span >= 0 && o.ID() >= span:
			span = o.ID() + 1
		}
	}
	if span < 0 {
		span = 0
	}
	fan := rtree.DefaultFanout(GlobalPageBytes, dim)
	list := make([]*uncertain.Object, len(objs))
	copy(list, objs)
	return &Index{
		objects:   byID,
		list:      list,
		tree:      rtree.Bulk(entries, 2, fan),
		dim:       dim,
		denseSpan: span,
	}, nil
}

// Len returns the number of indexed objects.
func (idx *Index) Len() int { return len(idx.list) }

// Dim returns the dimensionality of the indexed objects.
func (idx *Index) Dim() int { return idx.dim }

// Objects returns the indexed objects. The returned slice must not be
// modified.
func (idx *Index) Objects() []*uncertain.Object { return idx.list }

// Object returns the object with the given ID, or nil.
func (idx *Index) Object(id int) *uncertain.Object { return idx.objects[id] }

// Candidate is one NN candidate, in emission order.
type Candidate struct {
	Object *uncertain.Object
	// Rank is the emission position (0 = first candidate output).
	Rank int
	// MinDist is min(U_Q), the exact smallest query–object pair distance,
	// which is the order Algorithm 1 examines objects in.
	MinDist float64
	// Elapsed is the time from search start to this candidate's emission —
	// the progressive-property measurement of Figure 14.
	Elapsed time.Duration
	// Dominators is the number of other candidates dominating this one.
	// It is always 0 for Search and < k for SearchK.
	Dominators int
}

// Result is the outcome of an NNC search.
type Result struct {
	Operator   Operator
	Candidates []Candidate
	// Examined counts objects that reached an instance-level dominance
	// evaluation (Line 5–11 of Algorithm 1).
	Examined int
	Elapsed  time.Duration
	Stats    Stats
	// IO reports the storage-access delta of this search. It is the zero
	// value for memory-resident backends.
	IO IOStats
	// Incomplete marks a degraded search: the traversal finished but some
	// subtrees or objects were unreadable (quarantined pages), so
	// candidates from those regions may be missing. The accompanying
	// *PartialResultError carries the detailed counts and causes; the flag
	// is mirrored here so results that travel without their error (batch
	// slots, stream summaries) still declare themselves partial.
	Incomplete bool
}

// Objects returns the candidate objects in emission order.
func (r *Result) Objects() []*uncertain.Object {
	out := make([]*uncertain.Object, len(r.Candidates))
	for i, c := range r.Candidates {
		out[i] = c.Object
	}
	return out
}

// IDs returns the candidate object IDs in emission order.
func (r *Result) IDs() []int {
	out := make([]int, len(r.Candidates))
	for i, c := range r.Candidates {
		out[i] = c.Object.ID()
	}
	return out
}

// SearchOptions tunes an NNC search.
type SearchOptions struct {
	// Filters selects the Section 5.1 filtering techniques (AllFilters by
	// default via Search; the zero value is the brute-force configuration).
	Filters FilterConfig
	// OnCandidate, when non-nil, is invoked for each candidate the moment
	// it is proven undominated — the progressive property of Algorithm 1.
	OnCandidate func(Candidate)
	// Metric selects the instance distance (nil = Euclidean).
	Metric geom.Metric
	// Limit, when positive, stops the search after that many candidates
	// have been emitted. Because Algorithm 1 is progressive — an object is
	// only emitted once it is proven undominated — the first Limit
	// candidates of a truncated search are exactly the first Limit of the
	// full search.
	Limit int
	// Context, when non-nil, cancels the search: the traversal aborts at
	// the next heap pop or candidate emission once the context is done.
	// The ctx-taking entry points (SearchKCtx, SearchBackend, Stream)
	// take precedence over this field.
	Context context.Context
}

// metric resolves the options' metric, defaulting to Euclidean.
func (o SearchOptions) metric() geom.Metric {
	if o.Metric == nil {
		return geom.Euclidean
	}
	return o.Metric
}

// Search runs Algorithm 1 with every filtering technique enabled.
func (idx *Index) Search(q *uncertain.Object, op Operator) *Result {
	return idx.SearchOpts(q, op, SearchOptions{Filters: AllFilters})
}

// SearchOpts runs Algorithm 1: a best-first traversal of the global R-tree
// in non-decreasing min-distance order, testing each reached object against
// the NN candidates found so far and pruning entire entries whose every
// object is MBR-dominated by an existing candidate (Theorem 4). Objects are
// re-keyed by their exact min(U_Q) before evaluation — and exact-key ties
// are evaluated as one batch — so that the transitivity-based correctness
// argument of Section 5.2 applies. It is SearchKOpts with k = 1.
func (idx *Index) SearchOpts(q *uncertain.Object, op Operator, opts SearchOptions) *Result {
	return idx.SearchKOpts(q, op, 1, opts)
}

// BruteForce computes the NN candidates by exhaustive pairwise dominance:
// an object is a candidate iff no other object dominates it. It is the
// reference implementation Algorithm 1 is validated against, and has no
// R-tree or ordering optimizations.
func BruteForce(objs []*uncertain.Object, q *uncertain.Object, op Operator, cfg FilterConfig) []*uncertain.Object {
	checker := NewChecker(q, op, cfg)
	var out []*uncertain.Object
	for _, v := range objs {
		dominated := false
		for _, u := range objs {
			if u == v {
				continue
			}
			if checker.Dominates(u, v) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}
