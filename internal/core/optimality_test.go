package core

import (
	"math/rand"
	"testing"

	"spatialdom/internal/distr"
	"spatialdom/internal/geom"
	"spatialdom/internal/nnfunc"
	"spatialdom/internal/uncertain"
)

// These tests validate the optimality theorems (5–8) empirically: the
// correctness half on random inputs against every implemented NN function,
// and the completeness half by constructing the witness functions from the
// proofs.

// famCovered maps each operator to the families it covers.
var famCovered = map[Operator][]nnfunc.Family{
	SSD:     {nnfunc.N1},
	SSSD:    {nnfunc.N1, nnfunc.N2},
	PSD:     {nnfunc.N1, nnfunc.N2, nnfunc.N3},
	FSD:     {nnfunc.N1, nnfunc.N2, nnfunc.N3},
	FPlusSD: {nnfunc.N1, nnfunc.N2, nnfunc.N3},
}

// Correctness: SD(U,V,Q) implies f(U) <= f(V) for every implemented f in
// the operator's covered families, evaluated inside a random containing
// object set (N2 scores are set-relative).
func TestOperatorCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	suites := nnfunc.AllSuites()
	dominancesSeen := map[Operator]int{}
	for iter := 0; iter < 250; iter++ {
		d := 2
		q := randObject(rng, 0, d, 1+rng.Intn(3), randCenter(rng, d, 10), 1.5)
		base := randCenter(rng, d, 10)
		u := randObject(rng, 1, d, 1+rng.Intn(4), base, 2)
		off := base.Clone()
		off[0] += rng.Float64() * 6
		v := randObject(rng, 2, d, 1+rng.Intn(4), off, 2)
		extras := []*uncertain.Object{
			u, v,
			randObject(rng, 3, d, 1+rng.Intn(3), randCenter(rng, d, 10), 2),
			randObject(rng, 4, d, 1+rng.Intn(3), randCenter(rng, d, 10), 2),
		}
		for _, op := range Operators {
			if !NewChecker(q, op, AllFilters).Dominates(u, v) {
				continue
			}
			dominancesSeen[op]++
			for _, fam := range famCovered[op] {
				for _, f := range suites[fam] {
					scores := f.Scores(extras, q)
					if scores[0] > scores[1]+1e-9 {
						t.Fatalf("iter %d: %v holds but %s(%v) scores U=%g > V=%g",
							iter, op, f.Name(), fam, scores[0], scores[1])
					}
				}
			}
		}
	}
	for _, op := range []Operator{SSD, SSSD, PSD} {
		if dominancesSeen[op] == 0 {
			t.Fatalf("correctness never exercised for %v", op)
		}
	}
}

// Completeness of S-SD (Theorem 5): ¬S-SD(U,V,Q) implies some φ-quantile
// ranks V strictly better than U. The witness φ is Pr(V_Q <= λ) at a CDF
// crossing point λ.
func TestSSDCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	exercised := 0
	for iter := 0; iter < 400; iter++ {
		d := 2
		q := randObject(rng, 0, d, 1+rng.Intn(3), randCenter(rng, d, 10), 2)
		u := randObject(rng, 1, d, 1+rng.Intn(4), randCenter(rng, d, 10), 2)
		v := randObject(rng, 2, d, 1+rng.Intn(4), randCenter(rng, d, 10), 2)
		c := NewChecker(q, SSD, AllFilters)
		if c.Dominates(u, v) {
			continue
		}
		uq := distr.Between(u, q)
		vq := distr.Between(v, q)
		if distr.Equal(uq, vq, 1e-9) {
			continue // mutual equality: no function can separate them
		}
		exercised++
		found := false
		// Candidate φ values: the CDF levels of V_Q (plus U_Q's).
		var phis []float64
		acc := 0.0
		for i := 0; i < vq.Len(); i++ {
			acc += vq.Pair(i).Prob
			phis = append(phis, acc)
		}
		acc = 0
		for i := 0; i < uq.Len(); i++ {
			acc += uq.Pair(i).Prob
			phis = append(phis, acc)
		}
		for _, phi := range phis {
			if phi <= 0 || phi > 1 {
				continue
			}
			if vq.Quantile(phi) < uq.Quantile(phi)-1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("iter %d: ¬S-SD(U,V) but no quantile ranks V better\nU_Q=%v\nV_Q=%v", iter, uq, vq)
		}
	}
	if exercised < 50 {
		t.Fatalf("only %d non-dominated pairs exercised", exercised)
	}
}

// Completeness of SS-SD (Theorem 6): ¬SS-SD(U,V,Q) implies the
// world-threshold witness f with f(V) < f(U), searched over query
// instances and distance thresholds.
func TestSSSDCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	exercised := 0
	for iter := 0; iter < 400; iter++ {
		d := 2
		q := randObject(rng, 0, d, 1+rng.Intn(3), randCenter(rng, d, 10), 2)
		u := randObject(rng, 1, d, 1+rng.Intn(4), randCenter(rng, d, 10), 2)
		v := randObject(rng, 2, d, 1+rng.Intn(4), randCenter(rng, d, 10), 2)
		c := NewChecker(q, SSSD, AllFilters)
		if c.Dominates(u, v) {
			continue
		}
		// Skip pairs failing only the ≠ side condition.
		if distr.Equal(distr.Between(u, q), distr.Between(v, q), 1e-9) {
			continue
		}
		perQEqual := true
		for j := 0; j < q.Len(); j++ {
			uq := distr.BetweenInstance(u, q.Instance(j))
			vq := distr.BetweenInstance(v, q.Instance(j))
			if !distr.Equal(uq, vq, 1e-9) {
				perQEqual = false
			}
		}
		if perQEqual {
			continue
		}
		exercised++
		objs := []*uncertain.Object{u, v}
		found := false
	search:
		for j := 0; j < q.Len(); j++ {
			vq := distr.BetweenInstance(v, q.Instance(j))
			uq := distr.BetweenInstance(u, q.Instance(j))
			for _, dd := range []distr.Distribution{vq, uq} {
				for i := 0; i < dd.Len(); i++ {
					f := nnfunc.WorldThreshold(j, dd.Pair(i).Dist)
					scores := f.Scores(objs, q)
					if scores[1] < scores[0]-1e-12 {
						found = true
						break search
					}
				}
			}
		}
		if !found {
			t.Fatalf("iter %d: ¬SS-SD(U,V) but no world-threshold witness found", iter)
		}
	}
	if exercised < 50 {
		t.Fatalf("only %d pairs exercised", exercised)
	}
}

// Theorem 8 (F-SD incompleteness): a fixture where ¬F-SD(A,C,Q) yet
// P-SD(A,C,Q), so every implemented function in N1∪N2∪N3 still ranks A no
// worse than C — F-SD keeps C as a redundant candidate.
func TestFSDIncompleteness(t *testing.T) {
	const sep = 12
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {sep, 0}}, nil)
	a := uncertain.MustNew(1, []geom.Point{
		pointWithDists(sep, 5, 15),
		pointWithDists(sep, 20, 10),
	}, nil)
	cc := uncertain.MustNew(2, []geom.Point{
		pointWithDists(sep, 10, 20),
		pointWithDists(sep, 25, 15),
	}, nil)

	if NewChecker(q, FSD, AllFilters).Dominates(a, cc) {
		t.Fatal("fixture broken: F-SD should fail")
	}
	if !NewChecker(q, PSD, AllFilters).Dominates(a, cc) {
		t.Fatal("fixture broken: P-SD should hold")
	}
	objs := []*uncertain.Object{a, cc}
	for fam, fns := range nnfunc.AllSuites() {
		for _, f := range fns {
			scores := f.Scores(objs, q)
			if scores[0] > scores[1]+1e-9 {
				t.Fatalf("%s (%v): A scores %g worse than C %g despite P-SD(A,C)",
					f.Name(), fam, scores[0], scores[1])
			}
		}
	}
}

// Integration: the NN object under every implemented function must appear
// among the NN candidates of every operator covering its family — the
// promise the whole paper is about.
func TestNNCContainsEveryFunctionNN(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	suites := nnfunc.AllSuites()
	for iter := 0; iter < 8; iter++ {
		objs := randDataset(rng, 40, 2, 5, 60)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, 2, 1+rng.Intn(4), randCenter(rng, 2, 60), 3)
		candidates := map[Operator]map[int]bool{}
		for _, op := range Operators {
			set := make(map[int]bool)
			for _, id := range idx.Search(q, op).IDs() {
				set[id] = true
			}
			candidates[op] = set
		}
		for _, op := range Operators {
			for _, fam := range famCovered[op] {
				for _, f := range suites[fam] {
					nn := nnfunc.NN(objs, q, f)
					if !candidates[op][nn.ID()] {
						t.Fatalf("iter %d: NN under %s (%v) is object %d, missing from NNC(%v) = %v",
							iter, f.Name(), fam, nn.ID(), op, candidates[op])
					}
				}
			}
		}
	}
}
