package core

import (
	"fmt"

	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// Dynamic updates. The global R-tree supports insertion and deletion, so
// an Index can track a changing object set; searches running concurrently
// with updates are NOT safe (synchronize externally).

// Insert adds an object to the index. The object's ID must be unused and
// its dimensionality must match.
func (idx *Index) Insert(o *uncertain.Object) error {
	if o.Dim() != idx.dim {
		return fmt.Errorf("%w: object %d has dim %d, want %d", ErrIndexDimMix, o.ID(), o.Dim(), idx.dim)
	}
	if _, dup := idx.objects[o.ID()]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateID, o.ID())
	}
	idx.objects[o.ID()] = o
	idx.list = append(idx.list, o)
	idx.tree.Insert(rtree.Entry{Rect: o.MBR(), ID: o.ID()})
	return nil
}

// Delete removes the object with the given ID, reporting whether it was
// present.
func (idx *Index) Delete(id int) bool {
	o, ok := idx.objects[id]
	if !ok {
		return false
	}
	delete(idx.objects, id)
	for i, x := range idx.list {
		if x.ID() == id {
			idx.list = append(idx.list[:i], idx.list[i+1:]...)
			break
		}
	}
	idx.tree.Delete(o.MBR(), id)
	return true
}
