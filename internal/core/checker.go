package core

import (
	"math"

	"spatialdom/internal/distr"
	"spatialdom/internal/geom"
	"spatialdom/internal/rtree"
	"spatialdom/internal/uncertain"
)

// Checker decides spatial dominance between objects for one fixed query,
// caching per-object distance distributions, statistics, local-tree level
// bounds and hull-distance matrices across checks. A Checker is not safe
// for concurrent use.
//
// Every cache a checker builds lives in its CheckScratch arena, so a warm
// check — one whose pair of objects has been seen before — performs zero
// heap allocations, and a pooled scratch makes whole steady-state searches
// allocation-free.
//
// Object identity is the object ID: callers must give distinct IDs to
// distinct objects.
type Checker struct {
	query   *uncertain.Object
	op      Operator
	cfg     FilterConfig
	eps     float64
	metric  geom.Metric
	euclid  bool         // fast paths for the default metric
	hullIdx []int        // indices into query instances used by point-level checks
	hullPts []geom.Point // the corresponding points
	qMBR    geom.Rect
	cmpFn   func() // preallocated comparison-counting callback

	// Stats accumulates work counters; reset or read between searches.
	Stats Stats

	scratch *CheckScratch
}

// NewChecker returns a dominance checker for the given query, operator, and
// filter configuration, under the Euclidean metric.
func NewChecker(query *uncertain.Object, op Operator, cfg FilterConfig) *Checker {
	return NewCheckerMetric(query, op, cfg, geom.Euclidean)
}

// NewCheckerMetric is NewChecker under an arbitrary metric. Non-Euclidean
// metrics disable the convex-hull reduction (its bisector argument is
// L2-specific) and the local-R-tree shortcuts whose bounds assume L2, but
// keep every other filter; verdicts are metric-exact.
//
// The checker owns a private CheckScratch; searches that run many checkers
// should pool scratches and use CheckScratch.Checker instead, which is what
// the engine does.
func NewCheckerMetric(query *uncertain.Object, op Operator, cfg FilterConfig, m geom.Metric) *Checker {
	return new(CheckScratch).Checker(query, op, cfg, m)
}

// Metric returns the metric the checker evaluates distances under.
func (c *Checker) Metric() geom.Metric { return c.metric }

// Query returns the query object the checker was built for.
func (c *Checker) Query() *uncertain.Object { return c.query }

// Operator returns the operator the checker decides.
func (c *Checker) Operator() Operator { return c.op }

// Dominates reports whether SD(u, v, Q) holds under the checker's operator.
//
//nnc:hotpath
func (c *Checker) Dominates(u, v *uncertain.Object) bool {
	c.Stats.DominanceChecks++
	switch c.op {
	case SSD:
		return c.ssd(u, v)
	case SSSD:
		return c.sssd(u, v)
	case PSD:
		return c.psd(u, v)
	case FSD:
		return c.fsd(u, v)
	case FPlusSD:
		return c.fplussd(u, v)
	default:
		panic("core: unknown operator")
	}
}

// --- per-object cache --------------------------------------------------------

type objCache struct {
	obj *uncertain.Object

	distQOK bool
	distQ   distr.Distribution // U_Q

	perQ []distr.Distribution // U_q per query instance (lazy, all at once)

	statOK                     bool
	statMin, statMean, statMax float64
	perQStat                   [][3]float64 // min/mean/max of U_q per query instance

	hullD    [][]float64 // per instance: distances to every hull point
	distTree *rtree.Tree // R-tree over hullD rows (P-SD network construction)

	sphereOK bool
	sphere   geom.Sphere // bounding sphere, radius under the checker's metric

	levels []*levelBounds // S-SD level bounds, index = local-tree level
}

// cacheOf returns (creating on first use) the per-object cache. Dense IDs
// hit a slice-backed table — one bounds-checked load instead of a map
// probe — with the map kept as the fallback for sparse or out-of-range
// IDs.
func (c *Checker) cacheOf(o *uncertain.Object) *objCache {
	sc := c.scratch
	if id := o.ID(); id >= 0 && id < len(sc.dense) {
		oc := sc.dense[id]
		if oc == nil {
			oc = sc.newObjCache(o)
			sc.dense[id] = oc
			sc.touched = append(sc.touched, id)
		}
		return oc
	}
	if oc, ok := sc.sparse[o.ID()]; ok {
		return oc
	}
	if sc.sparse == nil {
		//nnc:allow hotpath-alloc: sparse fallback for negative/out-of-span IDs, built at most once per search; dense-ID searches never reach it
		sc.sparse = make(map[int]*objCache, 64)
	}
	oc := sc.newObjCache(o)
	//nnc:allow hotpath-alloc: sparse-map insert happens once per out-of-span object per search; the dense table serves the steady state
	sc.sparse[o.ID()] = oc
	return oc
}

// lookupCache returns the per-object cache if one exists, without creating
// it.
func (c *Checker) lookupCache(o *uncertain.Object) *objCache {
	sc := c.scratch
	if id := o.ID(); id >= 0 && id < len(sc.dense) {
		return sc.dense[id]
	}
	return sc.sparse[o.ID()]
}

// distQ returns the cached U_Q, building it on first use out of the
// scratch arena.
func (c *Checker) distQ(o *uncertain.Object) distr.Distribution {
	oc := c.cacheOf(o)
	if !oc.distQOK {
		if c.euclid {
			oc.distQ = distr.BetweenArena(&c.scratch.pairs, o, c.query)
		} else {
			oc.distQ = distr.BetweenFuncArena(&c.scratch.pairs, o, c.query, c.metric.Dist)
		}
		oc.distQOK = true
		c.Stats.InstanceComparisons += int64(o.Len() * c.query.Len())
	}
	return oc.distQ
}

// perQ returns the cached per-query-instance distributions U_q.
func (c *Checker) perQ(o *uncertain.Object) []distr.Distribution {
	oc := c.cacheOf(o)
	if oc.perQ == nil {
		oc.perQ = c.scratch.dists.Alloc(c.query.Len())
		for j := 0; j < c.query.Len(); j++ {
			if c.euclid {
				oc.perQ[j] = distr.BetweenInstanceArena(&c.scratch.pairs, o, c.query.Instance(j))
			} else {
				oc.perQ[j] = distr.BetweenInstanceFuncArena(&c.scratch.pairs, o, c.query.Instance(j), c.metric.Dist)
			}
		}
		c.Stats.InstanceComparisons += int64(o.Len() * c.query.Len())
	}
	return oc.perQ
}

// statsOf returns cached min/mean/max of U_Q. The per-query-instance
// statistics are built separately by perQStatsOf so that S-SD checks never
// pay for them.
func (c *Checker) statsOf(o *uncertain.Object) *objCache {
	oc := c.cacheOf(o)
	if !oc.statOK {
		dq := c.distQ(o)
		oc.statMin, oc.statMean, oc.statMax = dq.Min(), dq.Mean(), dq.Max()
		oc.statOK = true
	}
	return oc
}

// perQStatsOf returns cached min/mean/max of each U_q.
func (c *Checker) perQStatsOf(o *uncertain.Object) *objCache {
	oc := c.cacheOf(o)
	if oc.perQStat == nil {
		per := c.perQ(o)
		oc.perQStat = c.scratch.stats.Alloc(len(per))
		for j, d := range per {
			oc.perQStat[j] = [3]float64{d.Min(), d.Mean(), d.Max()}
		}
	}
	return oc
}

// hullDists returns, for each instance of o, its distances to every hull
// point of the query (the k-dimensional distance-space mapping of Section
// 5.1.2).
func (c *Checker) hullDists(o *uncertain.Object) [][]float64 {
	oc := c.cacheOf(o)
	if oc.hullD == nil {
		oc.hullD = c.scratch.rows.Alloc(o.Len())
		for i := 0; i < o.Len(); i++ {
			row := c.scratch.floats.Alloc(len(c.hullPts))
			for k, q := range c.hullPts {
				row[k] = c.metric.Dist(o.Instance(i), q)
			}
			oc.hullD[i] = row
		}
		c.Stats.InstanceComparisons += int64(o.Len() * len(c.hullPts))
	}
	return oc.hullD
}

// cmp returns the counting callback for stochastic-order scans; the
// closure is built once per scratch, never per check.
func (c *Checker) cmp() func() { return c.cmpFn }

// sphereOf returns the object's bounding hypersphere with the radius
// re-measured under the checker's metric (Ritter's center is metric-
// agnostic; any center yields a valid bound once the radius covers every
// instance).
func (c *Checker) sphereOf(o *uncertain.Object) geom.Sphere {
	oc := c.cacheOf(o)
	if !oc.sphereOK {
		s := o.Sphere()
		if !c.euclid {
			r := 0.0
			for i := 0; i < o.Len(); i++ {
				if d := c.metric.Dist(s.Center, o.Instance(i)); d > r {
					r = d
				}
			}
			s.Radius = r * (1 + 1e-12)
		}
		oc.sphere = s
		oc.sphereOK = true
		c.Stats.InstanceComparisons += int64(o.Len())
	}
	return oc.sphere
}

// sphereValidate is cover-based validation on bounding hyperspheres (the
// Long et al. [25] filter the paper points to after Theorem 4): for every
// hull query instance, δ(q,c_U)+r_U <= δ(q,c_V)−r_V. Spheres beat MBRs on
// round instance clouds, whose empty MBR corners inflate the max-distance
// bound.
func (c *Checker) sphereValidate(u, v *uncertain.Object) (holds, strict bool) {
	su, sv := c.sphereOf(u), c.sphereOf(v)
	holds = true
	for _, q := range c.hullPts {
		maxU := c.metric.Dist(q, su.Center) + su.Radius
		minV := c.metric.Dist(q, sv.Center) - sv.Radius
		if maxU > minV {
			return false, false
		}
		if maxU < minV {
			strict = true
		}
	}
	return holds, strict
}

// geoValidate tries MBR validation, then (when enabled) sphere validation,
// recording which one fired.
func (c *Checker) geoValidate(u, v *uncertain.Object) (holds, strict bool) {
	if holds, strict = c.mbrValidate(u, v); holds {
		c.Stats.MBRValidations++
		return holds, strict
	}
	if !c.cfg.SphereValidation {
		return false, false
	}
	if holds, strict = c.sphereValidate(u, v); holds {
		c.Stats.SphereValidations++
	}
	return holds, strict
}

// --- MBR-level validation (Theorem 4) ----------------------------------------

// mbrValidate decides cover-based validation: F-SD between the MBRs of u
// and v w.r.t. the query instances. It returns (holds, strict): strict
// means some query instance separates the MBRs with a strict inequality, in
// which case U_Q ≠ V_Q is guaranteed and the validation may conclude
// dominance outright.
func (c *Checker) mbrValidate(u, v *uncertain.Object) (holds, strict bool) {
	ub, vb := u.MBR(), v.MBR()
	holds = true
	for _, q := range c.hullPts {
		var maxU, minV float64
		if c.euclid {
			maxU = ub.MaxSqDistPoint(q)
			minV = vb.MinSqDistPoint(q)
		} else {
			maxU = c.metric.MaxDistRect(q, ub)
			minV = c.metric.MinDistRect(q, vb)
		}
		if maxU > minV {
			return false, false
		}
		if maxU < minV {
			strict = true
		}
	}
	return holds, strict
}

// --- S-SD ---------------------------------------------------------------------

func (c *Checker) ssd(u, v *uncertain.Object) bool {
	if c.cfg.Geometric {
		if holds, strict := c.geoValidate(u, v); holds && strict {
			return true
		}
	}
	if c.cfg.StatPruning {
		su, sv := c.statsOf(u), c.statsOf(v)
		if su.statMin > sv.statMin+c.eps || su.statMean > sv.statMean+c.eps || su.statMax > sv.statMax+c.eps {
			c.Stats.StatPrunes++
			return false
		}
	}
	if c.cfg.LevelByLevel {
		if dec, ok := c.levelDecideSSD(u, v); ok {
			c.Stats.LevelDecisions++
			return dec
		}
	}
	du, dv := c.distQ(u), c.distQ(v)
	if !distr.StochasticLE(du, dv, c.eps, c.cmp()) {
		return false
	}
	return !distr.Equal(du, dv, c.eps)
}

// --- SS-SD --------------------------------------------------------------------

func (c *Checker) sssd(u, v *uncertain.Object) bool {
	if c.cfg.Geometric {
		if holds, strict := c.geoValidate(u, v); holds && strict {
			return true
		}
	}
	if c.cfg.StatPruning {
		su, sv := c.statsOf(u), c.statsOf(v)
		// Cover-based pruning: ¬S-SD (by statistics) implies ¬SS-SD.
		if su.statMin > sv.statMin+c.eps || su.statMean > sv.statMean+c.eps || su.statMax > sv.statMax+c.eps {
			c.Stats.StatPrunes++
			return false
		}
		// Per-query-instance statistics.
		su, sv = c.perQStatsOf(u), c.perQStatsOf(v)
		for j := range su.perQStat {
			a, b := su.perQStat[j], sv.perQStat[j]
			if a[0] > b[0]+c.eps || a[1] > b[1]+c.eps || a[2] > b[2]+c.eps {
				c.Stats.StatPrunes++
				return false
			}
		}
	}
	if c.cfg.LevelByLevel {
		if dec, ok := c.levelDecideSSSD(u, v); ok {
			c.Stats.LevelDecisions++
			return dec
		}
	}
	pu, pv := c.perQ(u), c.perQ(v)
	for j := range pu {
		if !distr.StochasticLE(pu[j], pv[j], c.eps, c.cmp()) {
			return false
		}
	}
	return !distr.Equal(c.distQ(u), c.distQ(v), c.eps)
}

// --- F-SD (instance level) ----------------------------------------------------

// fsd decides instance-level full spatial dominance: for every query
// instance q (equivalently every hull instance), δmax(q,U) <= δmin(q,V).
// fsd decides instance-level full spatial dominance: δmax(q,U) <= δmin(q,V)
// for every query instance. Both extremes are exactly the per-query-
// instance statistics already cached per object, so after the one-time
// O(m·|Q|) statistics build each pairwise check costs O(|Q|) comparisons —
// the amortized equivalent of the paper's NN/furthest-neighbor searches on
// the local R-trees.
func (c *Checker) fsd(u, v *uncertain.Object) bool {
	if c.cfg.Geometric {
		if holds, _ := c.geoValidate(u, v); holds {
			return true
		}
	}
	su, sv := c.perQStatsOf(u), c.perQStatsOf(v)
	for j := range su.perQStat {
		c.Stats.InstanceComparisons++
		if su.perQStat[j][2] > sv.perQStat[j][0]+c.eps { // max(U_q) > min(V_q)
			return false
		}
	}
	return true
}

// minInstDist and maxInstDist are metric-aware linear scans over an
// object's instances. Under the Euclidean metric the scan compares squared
// distances and takes one square root at the end.
func (c *Checker) minInstDist(o *uncertain.Object, q geom.Point) float64 {
	if c.euclid {
		return math.Sqrt(geom.MinSqDistToPoints(q, o.Points()))
	}
	best := c.metric.Dist(o.Instance(0), q)
	for i := 1; i < o.Len(); i++ {
		if d := c.metric.Dist(o.Instance(i), q); d < best {
			best = d
		}
	}
	return best
}

func (c *Checker) maxInstDist(o *uncertain.Object, q geom.Point) float64 {
	if c.euclid {
		return math.Sqrt(geom.MaxSqDistToPoints(q, o.Points()))
	}
	best := c.metric.Dist(o.Instance(0), q)
	for i := 1; i < o.Len(); i++ {
		if d := c.metric.Dist(o.Instance(i), q); d > best {
			best = d
		}
	}
	return best
}

// fplussd is the MBR-only baseline of [16]: F-SD evaluated on the objects'
// MBRs against the query's MBR (Euclidean), or against the query instances
// with metric rectangle bounds for other metrics.
func (c *Checker) fplussd(u, v *uncertain.Object) bool {
	c.Stats.InstanceComparisons++
	if c.euclid {
		return geom.FSDMBR(u.MBR(), v.MBR(), c.qMBR)
	}
	holds, _ := c.mbrValidate(u, v)
	return holds
}

// MinPairDist returns min(U_Q): the exact smallest pairwise distance
// between the query and the object under the checker's metric — the key
// Algorithm 1 (and its disk-resident variant) orders objects by.
func (c *Checker) MinPairDist(o *uncertain.Object) float64 { return c.minPairDist(o) }

// RectLE reports whether every point of rectangle a is at least as close
// as every point of rectangle b to every query instance, with a
// strictness witness — the MBR-level entry-pruning test of Algorithm 1,
// exported for the disk-resident search.
func (c *Checker) RectLE(a, b geom.Rect) (le, strict bool) { return c.rectLE(a, b) }

// minPairDist returns min(U_Q): the smallest pairwise distance between the
// query and the object — the exact key Algorithm 1 orders objects by.
func (c *Checker) minPairDist(o *uncertain.Object) float64 {
	if oc := c.lookupCache(o); oc != nil && oc.statOK {
		return oc.statMin
	}
	best := math.Inf(1)
	if c.euclid {
		tree := o.LocalTree()
		for j := 0; j < c.query.Len(); j++ {
			if d, ok := tree.MinDist(c.query.Instance(j)); ok && d < best {
				best = d
			}
		}
	} else {
		for j := 0; j < c.query.Len(); j++ {
			if d := c.minInstDist(o, c.query.Instance(j)); d < best {
				best = d
			}
		}
	}
	c.Stats.InstanceComparisons += int64(c.query.Len())
	return best
}
