package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

func randDataset(rng *rand.Rand, n, d, m int, scale float64) []*uncertain.Object {
	objs := make([]*uncertain.Object, n)
	for i := range objs {
		objs[i] = randObject(rng, i+1, d, 1+rng.Intn(m), randCenter(rng, d, scale), scale/20)
	}
	return objs
}

func idsOf(objs []*uncertain.Object) []int {
	ids := make([]int, len(objs))
	for i, o := range objs {
		ids[i] = o.ID()
	}
	sort.Ints(ids)
	return ids
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil); !errors.Is(err, ErrNoObjects) {
		t.Fatalf("empty: %v", err)
	}
	a := uncertain.MustNew(1, []geom.Point{{0, 0}}, nil)
	b := uncertain.MustNew(1, []geom.Point{{1, 1}}, nil)
	if _, err := NewIndex([]*uncertain.Object{a, b}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup: %v", err)
	}
	c := uncertain.MustNew(2, []geom.Point{{1}}, nil)
	if _, err := NewIndex([]*uncertain.Object{a, c}); !errors.Is(err, ErrIndexDimMix) {
		t.Fatalf("dim: %v", err)
	}
	idx, err := NewIndex([]*uncertain.Object{a})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 || idx.Dim() != 2 || idx.Object(1) != a || idx.Object(9) != nil {
		t.Fatal("accessors wrong")
	}
}

// Algorithm 1 must return exactly the brute-force skyline under every
// operator and every filter configuration.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for iter := 0; iter < 25; iter++ {
		d := 2 + rng.Intn(2)
		n := 20 + rng.Intn(60)
		objs := randDataset(rng, n, d, 6, 100)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, d, 1+rng.Intn(5), randCenter(rng, d, 100), 4)
		for _, op := range Operators {
			want := idsOf(BruteForce(objs, q, op, AllFilters))
			for _, cfg := range []FilterConfig{{}, AllFilters} {
				res := idx.SearchOpts(q, op, SearchOptions{Filters: cfg})
				got := res.IDs()
				sort.Ints(got)
				if len(got) != len(want) {
					t.Fatalf("iter %d %v cfg %+v: got %d candidates, brute force %d\n got  %v\n want %v",
						iter, op, cfg, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("iter %d %v: candidate sets differ\n got  %v\n want %v", iter, op, got, want)
					}
				}
			}
		}
	}
}

// Candidate sets nest along the cover chain (Figure 5):
// NNC(S-SD) ⊆ NNC(SS-SD) ⊆ NNC(P-SD) ⊆ NNC(F-SD) ⊆ NNC(F+-SD).
func TestCandidateNesting(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for iter := 0; iter < 10; iter++ {
		objs := randDataset(rng, 60, 2, 6, 100)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 100), 5)
		var prev map[int]bool
		for _, op := range Operators { // cover order: SSD, SSSD, PSD, FSD, F+SD
			res := idx.Search(q, op)
			cur := make(map[int]bool, len(res.Candidates))
			for _, c := range res.Candidates {
				cur[c.Object.ID()] = true
			}
			if prev != nil {
				for id := range prev {
					if !cur[id] {
						t.Fatalf("iter %d: candidate %d present under stronger op but missing under %v", iter, id, op)
					}
				}
			}
			prev = cur
		}
	}
}

// Progressive property: candidates are emitted in non-decreasing exact
// min-distance order, the callback fires once per candidate in rank order,
// and elapsed times are monotone.
func TestSearchProgressive(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	objs := randDataset(rng, 80, 2, 6, 100)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 100), 5)
	var seen []Candidate
	res := idx.SearchOpts(q, PSD, SearchOptions{
		Filters:     AllFilters,
		OnCandidate: func(c Candidate) { seen = append(seen, c) },
	})
	if len(seen) != len(res.Candidates) {
		t.Fatalf("callback fired %d times for %d candidates", len(seen), len(res.Candidates))
	}
	for i, c := range seen {
		if c.Rank != i {
			t.Fatalf("rank %d at position %d", c.Rank, i)
		}
		if i > 0 {
			if c.MinDist < seen[i-1].MinDist-1e-9 {
				t.Fatalf("min-dist order violated: %g after %g", c.MinDist, seen[i-1].MinDist)
			}
			if c.Elapsed < seen[i-1].Elapsed {
				t.Fatalf("elapsed not monotone")
			}
		}
	}
	if res.Examined < len(res.Candidates) {
		t.Fatalf("examined %d < candidates %d", res.Examined, len(res.Candidates))
	}
	if res.Stats.DominanceChecks == 0 || res.Stats.HeapPops == 0 {
		t.Fatalf("stats not collected: %+v", res.Stats)
	}
}

// The first emitted candidate must be the object with the globally minimal
// pair distance (it can never be dominated).
func TestFirstCandidateIsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	for iter := 0; iter < 10; iter++ {
		objs := randDataset(rng, 50, 2, 5, 100)
		idx, _ := NewIndex(objs)
		q := randObject(rng, 0, 2, 2, randCenter(rng, 2, 100), 3)
		c := NewChecker(q, SSD, AllFilters)
		best, bestID := 1e18, -1
		for _, o := range objs {
			if d := c.minPairDist(o); d < best {
				best, bestID = d, o.ID()
			}
		}
		for _, op := range Operators {
			res := idx.Search(q, op)
			if len(res.Candidates) == 0 {
				t.Fatalf("no candidates under %v", op)
			}
			if res.Candidates[0].Object.ID() != bestID {
				t.Fatalf("iter %d %v: first candidate %d, want closest %d",
					iter, op, res.Candidates[0].Object.ID(), bestID)
			}
		}
	}
}

// Duplicated objects (identical distributions) must both be candidates:
// the U_Q ≠ V_Q side condition forbids mutual elimination.
func TestDuplicateObjectsBothSurvive(t *testing.T) {
	pts := []geom.Point{{5, 5}, {6, 6}}
	a := uncertain.MustNew(1, pts, nil)
	b := uncertain.MustNew(2, pts, nil)
	far := uncertain.MustNew(3, []geom.Point{{100, 100}}, nil)
	idx, err := NewIndex([]*uncertain.Object{a, b, far})
	if err != nil {
		t.Fatal(err)
	}
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {1, 1}}, nil)
	for _, op := range []Operator{SSD, SSSD, PSD} {
		res := idx.Search(q, op)
		got := res.IDs()
		sort.Ints(got)
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("%v: candidates = %v, want [1 2]", op, got)
		}
	}
}

// Limit truncation returns exactly the prefix of the full result — the
// progressive property makes early termination sound.
func TestSearchLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	objs := randDataset(rng, 100, 2, 5, 100)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 4, randCenter(rng, 2, 100), 20)
	full := idx.Search(q, FPlusSD)
	if len(full.Candidates) < 4 {
		t.Skipf("only %d candidates; fixture too small", len(full.Candidates))
	}
	lim := idx.SearchOpts(q, FPlusSD, SearchOptions{Filters: AllFilters, Limit: 3})
	if len(lim.Candidates) != 3 {
		t.Fatalf("limited search returned %d", len(lim.Candidates))
	}
	for i := 0; i < 3; i++ {
		if lim.Candidates[i].Object.ID() != full.Candidates[i].Object.ID() {
			t.Fatalf("limited prefix differs at %d", i)
		}
	}
	// Limit must also hold on the k-skyband path.
	limK := idx.SearchKOpts(q, FPlusSD, 2, SearchOptions{Filters: AllFilters, Limit: 2})
	if len(limK.Candidates) != 2 {
		t.Fatalf("limited SearchK returned %d", len(limK.Candidates))
	}
}

func TestResultAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	objs := randDataset(rng, 20, 2, 4, 50)
	idx, _ := NewIndex(objs)
	q := randObject(rng, 0, 2, 2, randCenter(rng, 2, 50), 2)
	res := idx.Search(q, SSD)
	if len(res.Objects()) != len(res.Candidates) || len(res.IDs()) != len(res.Candidates) {
		t.Fatal("accessor lengths differ")
	}
	for i, o := range res.Objects() {
		if o.ID() != res.IDs()[i] {
			t.Fatal("Objects/IDs disagree")
		}
	}
	if res.Operator != SSD {
		t.Fatal("operator not recorded")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}
