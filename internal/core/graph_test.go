package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestDominanceGraphAgreesWithSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for iter := 0; iter < 5; iter++ {
		objs := randDataset(rng, 25, 2, 4, 60)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 60), 3)
		for _, op := range []Operator{SSD, SSSD, PSD} {
			g := BuildDominanceGraph(objs, q, op, AllFilters)
			want := idx.Search(q, op).IDs()
			sort.Ints(want)
			var got []int
			for _, o := range g.Candidates() {
				got = append(got, o.ID())
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("%v: graph candidates %v, search %v", op, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: graph candidates %v, search %v", op, got, want)
				}
			}
			// Dominator counts agree with SearchK bands.
			counts := g.DominatorCount()
			for _, k := range []int{2, 3} {
				bandWant := idx.SearchK(q, op, k).IDs()
				sort.Ints(bandWant)
				var bandGot []int
				for i, c := range counts {
					if c < k {
						bandGot = append(bandGot, objs[i].ID())
					}
				}
				sort.Ints(bandGot)
				if len(bandGot) != len(bandWant) {
					t.Fatalf("%v k=%d: graph band %v, SearchK %v", op, k, bandGot, bandWant)
				}
			}
		}
	}
}

func TestDominanceGraphDOT(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	objs := randDataset(rng, 10, 2, 3, 40)
	objs[0].SetLabel("alpha")
	q := randObject(rng, 0, 2, 2, randCenter(rng, 2, 40), 2)
	g := BuildDominanceGraph(objs, q, SSD, AllFilters)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph SSD", "alpha", "shape=box", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Every printed edge must be a real dominance (spot check by parsing).
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "->") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "n%d -> n%d;", &a, &b); err != nil {
			t.Fatalf("unparseable edge %q: %v", line, err)
		}
		ia, ib := -1, -1
		for i, o := range objs {
			if o.ID() == a {
				ia = i
			}
			if o.ID() == b {
				ib = i
			}
		}
		if ia < 0 || ib < 0 || !g.Dominates[ia][ib] {
			t.Fatalf("edge %d->%d not in relation", a, b)
		}
	}
}
