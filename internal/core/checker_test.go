package core

import (
	"math"
	"math/rand"
	"testing"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// pointWithDists constructs a 2-D point at the prescribed distances from
// q1 = (0,0) and q2 = (sep,0). It panics when the distances are infeasible.
func pointWithDists(sep, d1, d2 float64) geom.Point {
	x := (d1*d1 - d2*d2 + sep*sep) / (2 * sep)
	y2 := d1*d1 - x*x
	if y2 < -1e-9 {
		panic("infeasible distance pair")
	}
	if y2 < 0 {
		y2 = 0
	}
	return geom.Point{x, math.Sqrt(y2)}
}

func checkAllConfigs(t *testing.T, op Operator, q, u, v *uncertain.Object, want bool, label string) {
	t.Helper()
	for _, cfg := range []FilterConfig{
		{},
		{StatPruning: true},
		{Geometric: true},
		{LevelByLevel: true},
		AllFilters,
	} {
		c := NewChecker(q, op, cfg)
		if got := c.Dominates(u, v); got != want {
			t.Errorf("%s: %v with cfg %+v = %v, want %v", label, op, cfg, got, want)
		}
	}
}

// Example 2 / Figure 6(a): single-instance A and B, two query instances.
// A_Q = {(3,.5),(17,.5)}, B_Q = {(5,.5),(25,.5)}: S-SD(A,B,Q) holds, but
// A_q1 = {17} vs B_q1 = {5} breaks SS-SD.
func TestPaperExample2(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0}, {20}}, nil)
	a := uncertain.MustNew(1, []geom.Point{{17}}, nil)
	b := uncertain.MustNew(2, []geom.Point{{-5}}, nil)

	checkAllConfigs(t, SSD, q, a, b, true, "S-SD(A,B)")
	checkAllConfigs(t, SSSD, q, a, b, false, "SS-SD(A,B)")
	checkAllConfigs(t, PSD, q, a, b, false, "P-SD(A,B)")
	checkAllConfigs(t, FSD, q, a, b, false, "F-SD(A,B)")
}

// Figure 3's story: A close to q1's side, C hugging q2. S-SD(A,C,Q) holds
// on the mixed distribution yet C is strictly closer to q2 than A, so
// SS-SD(A,C,Q) fails (and C wins under the NN-probability function).
func TestPaperFigure3(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {10, 0}}, nil)
	a := uncertain.MustNew(1, []geom.Point{{0, -3}, {0, 3}}, nil)    // A_q1={3,3}, A_q2≈{10.44,10.44}
	b := uncertain.MustNew(2, []geom.Point{{0, -3.5}, {0, 6}}, nil)  // farther than A, crosses C
	cc := uncertain.MustNew(3, []geom.Point{{10, -4}, {10, 4}}, nil) // C_q2={4,4}, C_q1≈{10.77,10.77}

	checkAllConfigs(t, SSD, q, a, b, true, "S-SD(A,B)")
	checkAllConfigs(t, SSSD, q, a, b, true, "SS-SD(A,B)")
	checkAllConfigs(t, SSD, q, a, cc, true, "S-SD(A,C)")
	checkAllConfigs(t, SSSD, q, a, cc, false, "SS-SD(A,C)")
	checkAllConfigs(t, PSD, q, a, cc, false, "P-SD(A,C)")
	// B vs C incomparable under S-SD.
	checkAllConfigs(t, SSD, q, b, cc, false, "S-SD(B,C)")
	checkAllConfigs(t, SSD, q, cc, b, false, "S-SD(C,B)")
}

// A Figure 4-style configuration: SS-SD(A,B,Q) holds per query instance,
// but A's "specialist" instance (good at nothing B offers) cannot be
// matched, so P-SD(A,B,Q) fails.
func TestPaperFigure4StyleNoMatch(t *testing.T) {
	const sep = 2
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {sep, 0}}, nil)
	a := uncertain.MustNew(1, []geom.Point{
		pointWithDists(sep, 5, 5), // a1: dominated by no b instance
		pointWithDists(sep, 4, 4),
	}, nil)
	b := uncertain.MustNew(2, []geom.Point{
		pointWithDists(sep, 6, 4.5),
		pointWithDists(sep, 4.5, 6),
	}, nil)

	checkAllConfigs(t, SSD, q, a, b, true, "S-SD(A,B)")
	checkAllConfigs(t, SSSD, q, a, b, true, "SS-SD(A,B)")
	checkAllConfigs(t, PSD, q, a, b, false, "P-SD(A,B)")
	checkAllConfigs(t, FSD, q, a, b, false, "F-SD(A,B)")
}

// Example 3 / Figure 8: the match a1→b1, a2→b2 proves P-SD(A,B,Q).
func TestPaperExample3Match(t *testing.T) {
	const sep = 12
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {sep, 0}}, nil)
	a := uncertain.MustNew(1, []geom.Point{
		pointWithDists(sep, 5, 15),
		pointWithDists(sep, 20, 10),
	}, nil)
	b := uncertain.MustNew(2, []geom.Point{
		pointWithDists(sep, 10, 20),
		pointWithDists(sep, 25, 15),
	}, nil)

	checkAllConfigs(t, PSD, q, a, b, true, "P-SD(A,B)")
	checkAllConfigs(t, SSSD, q, a, b, true, "SS-SD(A,B)")
	checkAllConfigs(t, SSD, q, a, b, true, "S-SD(A,B)")
	// F-SD fails: a2 (dist 20 from q1) is farther than b1 (dist 10 from q1).
	checkAllConfigs(t, FSD, q, a, b, false, "F-SD(A,B)")
}

// F-SD holds when U's whole extent is closer than V's to every query
// instance; then every operator must agree (Theorem 2 validation chain).
func TestFSDImpliesAll(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {1, 1}}, nil)
	u := uncertain.MustNew(1, []geom.Point{{0.4, 0.4}, {0.6, 0.6}}, nil)
	v := uncertain.MustNew(2, []geom.Point{{50, 50}, {51, 51}}, nil)
	for _, op := range Operators {
		checkAllConfigs(t, op, q, u, v, true, "far-V "+op.String())
	}
}

// No operator may let an object dominate an identical twin (the U_Q ≠ V_Q
// side condition of Definitions 2, 3 and 5).
func TestIdenticalObjectsDontDominate(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}, {2, 2}}, nil)
	u := uncertain.MustNew(1, []geom.Point{{5, 5}, {6, 6}}, nil)
	v := uncertain.MustNew(2, []geom.Point{{5, 5}, {6, 6}}, nil)
	for _, op := range []Operator{SSD, SSSD, PSD} {
		checkAllConfigs(t, op, q, u, v, false, "twin "+op.String())
	}
}

// --- randomized helpers -------------------------------------------------------

func randObject(rng *rand.Rand, id, d, m int, center geom.Point, spread float64) *uncertain.Object {
	pts := make([]geom.Point, m)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = center[j] + (rng.Float64()*2-1)*spread
		}
		pts[i] = p
	}
	// Random (normalizable) weights half the time.
	if rng.Intn(2) == 0 {
		return uncertain.MustNew(id, pts, nil)
	}
	ws := make([]float64, m)
	for i := range ws {
		ws[i] = rng.Float64() + 0.05
	}
	return uncertain.MustNew(id, pts, ws)
}

func randCenter(rng *rand.Rand, d int, scale float64) geom.Point {
	c := make(geom.Point, d)
	for j := range c {
		c[j] = rng.Float64() * scale
	}
	return c
}

// Verdicts must be identical across every filter configuration — the
// filters are pure accelerations (differential correctness test).
func TestFilterConfigsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfgs := []FilterConfig{
		{},
		{StatPruning: true},
		{Geometric: true},
		{LevelByLevel: true},
		{LevelByLevel: true, Geometric: true},
		{LevelByLevel: true, StatPruning: true},
		AllFilters,
	}
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(2)
		q := randObject(rng, 0, d, 1+rng.Intn(5), randCenter(rng, d, 10), 2)
		u := randObject(rng, 1, d, 1+rng.Intn(6), randCenter(rng, d, 10), 3)
		v := randObject(rng, 2, d, 1+rng.Intn(6), randCenter(rng, d, 10), 3)
		for _, op := range Operators {
			base := NewChecker(q, op, cfgs[0]).Dominates(u, v)
			for _, cfg := range cfgs[1:] {
				if got := NewChecker(q, op, cfg).Dominates(u, v); got != base {
					t.Fatalf("iter %d: %v verdict differs: cfg %+v = %v, bare = %v\nq=%v\nu=%v\nv=%v",
						iter, op, cfg, got, base, q.Points(), u.Points(), v.Points())
				}
			}
		}
	}
}

// Theorem 2 cover chain: F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD (as implications on
// random inputs).
func TestCoverChain(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	counts := map[Operator]int{}
	for iter := 0; iter < 600; iter++ {
		d := 2 + rng.Intn(2)
		q := randObject(rng, 0, d, 1+rng.Intn(4), randCenter(rng, d, 10), 1.5)
		base := randCenter(rng, d, 10)
		u := randObject(rng, 1, d, 1+rng.Intn(5), base, 2)
		// Bias v to sometimes be dominated.
		off := make(geom.Point, d)
		copy(off, base)
		off[0] += rng.Float64() * 8
		v := randObject(rng, 2, d, 1+rng.Intn(5), off, 2)

		fsd := NewChecker(q, FSD, AllFilters).Dominates(u, v)
		psd := NewChecker(q, PSD, AllFilters).Dominates(u, v)
		sssd := NewChecker(q, SSSD, AllFilters).Dominates(u, v)
		ssd := NewChecker(q, SSD, AllFilters).Dominates(u, v)

		if fsd && !psd {
			t.Fatalf("iter %d: F-SD holds but P-SD fails", iter)
		}
		if psd && !sssd {
			t.Fatalf("iter %d: P-SD holds but SS-SD fails", iter)
		}
		if sssd && !ssd {
			t.Fatalf("iter %d: SS-SD holds but S-SD fails", iter)
		}
		for op, ok := range map[Operator]bool{FSD: fsd, PSD: psd, SSSD: sssd, SSD: ssd} {
			if ok {
				counts[op]++
			}
		}
	}
	// The chain must be exercised in both directions: S-SD fires on more
	// pairs than SS-SD than P-SD than F-SD.
	if !(counts[SSD] >= counts[SSSD] && counts[SSSD] >= counts[PSD] && counts[PSD] >= counts[FSD]) {
		t.Fatalf("dominance frequencies out of order: %v", counts)
	}
	if counts[SSD] == 0 || counts[PSD] == 0 {
		t.Fatalf("chain not exercised: %v", counts)
	}
}

// Theorem 3: with a single query instance, P-SD, SS-SD and S-SD coincide
// (F-SD stays stronger).
func TestSingleQueryInstanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 400; iter++ {
		d := 2 + rng.Intn(2)
		q := randObject(rng, 0, d, 1, randCenter(rng, d, 10), 0)
		base := randCenter(rng, d, 10)
		u := randObject(rng, 1, d, 1+rng.Intn(5), base, 2)
		off := base.Clone()
		off[0] += rng.Float64() * 6
		v := randObject(rng, 2, d, 1+rng.Intn(5), off, 2)

		ssd := NewChecker(q, SSD, AllFilters).Dominates(u, v)
		sssd := NewChecker(q, SSSD, AllFilters).Dominates(u, v)
		psd := NewChecker(q, PSD, AllFilters).Dominates(u, v)
		fsd := NewChecker(q, FSD, AllFilters).Dominates(u, v)
		if ssd != sssd || ssd != psd {
			t.Fatalf("iter %d: |Q|=1 equivalence broken: ssd=%v sssd=%v psd=%v", iter, ssd, sssd, psd)
		}
		if fsd && !psd {
			t.Fatalf("iter %d: F-SD ⊄ P-SD at |Q|=1", iter)
		}
	}
}

// Theorem 9: transitivity of every operator, sampled.
func TestTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	exercised := map[Operator]int{}
	for iter := 0; iter < 1500; iter++ {
		d := 2
		q := randObject(rng, 0, d, 1+rng.Intn(3), randCenter(rng, d, 10), 1)
		base := randCenter(rng, d, 10)
		u := randObject(rng, 1, d, 1+rng.Intn(4), base, 1.5)
		m1 := base.Clone()
		m1[0] += 2 + rng.Float64()*4
		v := randObject(rng, 2, d, 1+rng.Intn(4), m1, 1.5)
		m2 := m1.Clone()
		m2[0] += 2 + rng.Float64()*4
		w := randObject(rng, 3, d, 1+rng.Intn(4), m2, 1.5)
		for _, op := range Operators {
			c := NewChecker(q, op, AllFilters)
			if c.Dominates(u, v) && c.Dominates(v, w) {
				exercised[op]++
				if !c.Dominates(u, w) {
					t.Fatalf("iter %d: %v transitivity violated", iter, op)
				}
			}
		}
	}
	for _, op := range []Operator{SSD, SSSD, PSD} {
		if exercised[op] == 0 {
			t.Fatalf("%v transitivity never exercised (%v)", op, exercised)
		}
	}
}

// The dominance frequency ordering also holds pairwise with Covers.
func TestOperatorCovers(t *testing.T) {
	if !SSD.Covers(SSSD) || !SSSD.Covers(PSD) || !PSD.Covers(FSD) || !FSD.Covers(FPlusSD) {
		t.Fatal("cover chain broken")
	}
	if FPlusSD.Covers(FSD) || PSD.Covers(SSD) {
		t.Fatal("reverse cover claimed")
	}
	for _, op := range Operators {
		if !op.Covers(op) {
			t.Fatalf("%v must cover itself", op)
		}
	}
}

func TestOperatorString(t *testing.T) {
	want := map[Operator]string{SSD: "SSD", SSSD: "SSSD", PSD: "PSD", FSD: "FSD", FPlusSD: "F+SD"}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d String = %q", int(op), op.String())
		}
	}
	if Operator(99).String() != "Operator(99)" {
		t.Fatal("unknown operator String")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{InstanceComparisons: 1, DominanceChecks: 2, MBRValidations: 3, StatPrunes: 4,
		LevelDecisions: 5, FlowSolves: 6, HeapPops: 7, EntryPrunes: 8}
	b := a
	a.Add(b)
	if a.InstanceComparisons != 2 || a.EntryPrunes != 16 || a.FlowSolves != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}
