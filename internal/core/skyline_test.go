package core

import (
	"math/rand"
	"sort"
	"testing"

	"spatialdom/internal/geom"
)

// bruteSpatialSkyline is the textbook O(n²·|Q|) definition.
func bruteSpatialSkyline(points, query []geom.Point) []int {
	dominates := func(a, b geom.Point) bool {
		le, strict := true, false
		for _, q := range query {
			da, db := geom.SqDist(a, q), geom.SqDist(b, q)
			if da > db {
				le = false
				break
			}
			if da < db {
				strict = true
			}
		}
		return le && strict
	}
	var out []int
	for i, p := range points {
		dominated := false
		for j, o := range points {
			if i != j && dominates(o, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func TestSpatialSkylineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for iter := 0; iter < 30; iter++ {
		n := 10 + rng.Intn(60)
		points := make([]geom.Point, n)
		for i := range points {
			points[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		nq := 1 + rng.Intn(5)
		query := make([]geom.Point, nq)
		for i := range query {
			query[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		want := bruteSpatialSkyline(points, query)
		got := SpatialSkyline(points, query)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("iter %d: got %v, want %v", iter, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: got %v, want %v", iter, got, want)
			}
		}
	}
}

func TestSpatialSkylineKnownConfiguration(t *testing.T) {
	// One query point: the skyline is exactly the nearest point(s).
	points := []geom.Point{{1, 0}, {2, 0}, {3, 0}}
	got := SpatialSkyline(points, []geom.Point{{0, 0}})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-query skyline = %v", got)
	}
	// Two query points on opposite sides: both extremes survive.
	got = SpatialSkyline(points, []geom.Point{{0, 0}, {4, 0}})
	sort.Ints(got)
	if len(got) != 3 {
		// Points between the two query points are incomparable: p1 is
		// closer to q1, p3 closer to q2, p2 in the middle beats neither
		// everywhere — all three survive.
		t.Fatalf("two-sided skyline = %v, want all three", got)
	}
	// Degenerate inputs.
	if SpatialSkyline(nil, []geom.Point{{0}}) != nil {
		t.Fatal("empty points")
	}
	if SpatialSkyline(points, nil) != nil {
		t.Fatal("empty query")
	}
}
