package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"spatialdom/internal/distr"
	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

func TestInsertDeleteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	objs := randDataset(rng, 10, 2, 4, 40)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	dup := uncertain.MustNew(objs[0].ID(), []geom.Point{{0, 0}}, nil)
	if err := idx.Insert(dup); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup insert: %v", err)
	}
	wrongDim := uncertain.MustNew(999, []geom.Point{{0, 0, 0}}, nil)
	if err := idx.Insert(wrongDim); !errors.Is(err, ErrIndexDimMix) {
		t.Fatalf("dim insert: %v", err)
	}
	if idx.Delete(424242) {
		t.Fatal("deleted missing object")
	}
}

// An index evolved through inserts and deletes must answer exactly like a
// fresh index over the surviving objects.
func TestDynamicIndexMatchesRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	objs := randDataset(rng, 60, 2, 5, 80)
	idx, err := NewIndex(objs[:40])
	if err != nil {
		t.Fatal(err)
	}
	// Insert the remaining 20.
	for _, o := range objs[40:] {
		if err := idx.Insert(o); err != nil {
			t.Fatal(err)
		}
	}
	// Delete 15 random survivors.
	perm := rng.Perm(len(objs))
	alive := map[int]bool{}
	for _, o := range objs {
		alive[o.ID()] = true
	}
	for _, pi := range perm[:15] {
		if !idx.Delete(objs[pi].ID()) {
			t.Fatalf("delete %d failed", objs[pi].ID())
		}
		alive[objs[pi].ID()] = false
	}
	if idx.Len() != 45 {
		t.Fatalf("Len = %d", idx.Len())
	}

	var survivors []*uncertain.Object
	for _, o := range objs {
		if alive[o.ID()] {
			survivors = append(survivors, o)
		}
	}
	fresh, err := NewIndex(survivors)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 80), 4)
		for _, op := range Operators {
			a := idx.Search(q, op).IDs()
			b := fresh.Search(q, op).IDs()
			sort.Ints(a)
			sort.Ints(b)
			if len(a) != len(b) {
				t.Fatalf("%v: dynamic %v != rebuilt %v", op, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: dynamic %v != rebuilt %v", op, a, b)
				}
			}
		}
	}
}

// A Checker's per-object caches must never change verdicts: evaluating
// many pairs in random order with one shared checker gives the same
// results as fresh checkers per pair.
func TestCheckerCacheIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	objs := randDataset(rng, 20, 2, 5, 50)
	q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 50), 3)
	for _, op := range Operators {
		shared := NewChecker(q, op, AllFilters)
		type pair struct{ i, j int }
		var pairs []pair
		for i := range objs {
			for j := range objs {
				if i != j {
					pairs = append(pairs, pair{i, j})
				}
			}
		}
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		for _, p := range pairs {
			got := shared.Dominates(objs[p.i], objs[p.j])
			want := NewChecker(q, op, AllFilters).Dominates(objs[p.i], objs[p.j])
			if got != want {
				t.Fatalf("%v: shared checker verdict for (%d,%d) = %v, fresh = %v",
					op, objs[p.i].ID(), objs[p.j].ID(), got, want)
			}
		}
	}
}

// White-box: the level-by-level bounding distributions must bracket the
// exact distribution in stochastic order (LB ≤st U_Q ≤st UB) at every
// coarse level.
func TestLevelBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(804))
	for iter := 0; iter < 100; iter++ {
		q := randObject(rng, 0, 2, 1+rng.Intn(4), randCenter(rng, 2, 30), 3)
		o := randObject(rng, 1, 2, 5+rng.Intn(20), randCenter(rng, 2, 30), 5)
		c := NewChecker(q, SSD, AllFilters)
		exact := c.distQ(o)
		oc := c.cacheOf(o)
		maxLvl := o.LocalTree().Height() - 1
		if maxLvl > maxCoarseLevel {
			maxLvl = maxCoarseLevel
		}
		for lvl := 1; lvl <= maxLvl; lvl++ {
			b := c.levelInfo(oc, lvl)
			if !stochLE(t, b.lbQ, exact) {
				t.Fatalf("iter %d lvl %d: LB not ≤st exact", iter, lvl)
			}
			if !stochLE(t, exact, b.ubQ) {
				t.Fatalf("iter %d lvl %d: exact not ≤st UB", iter, lvl)
			}
		}
	}
}

// stochLE re-implements X ≤st Y independently as a CDF comparison over
// the grid of all atom values.
func stochLE(t *testing.T, x, y distr.Distribution) bool {
	t.Helper()
	var vals []float64
	for i := 0; i < x.Len(); i++ {
		vals = append(vals, x.Pair(i).Dist)
	}
	for i := 0; i < y.Len(); i++ {
		vals = append(vals, y.Pair(i).Dist)
	}
	for _, v := range vals {
		if x.CDF(v) < y.CDF(v)-1e-9 {
			return false
		}
	}
	return true
}
