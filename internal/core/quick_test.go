package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// rawObj is a quick-generated object on a small integer grid — integer
// coordinates deliberately produce duplicate instances, ties and identical
// distributions, the edge cases the eps handling and ≠ side conditions
// must survive.
type rawObj struct {
	Xs [4]uint8
	Ys [4]uint8
	N  uint8
}

func (r rawObj) object(id int) *uncertain.Object {
	n := int(r.N%4) + 1
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{float64(r.Xs[i] % 16), float64(r.Ys[i] % 16)}
	}
	return uncertain.MustNew(id, pts, nil)
}

var quickCfg = &quick.Config{MaxCount: 600, Rand: rand.New(rand.NewSource(999))}

// The cover chain F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD holds on arbitrary inputs,
// including tie-heavy integer grids.
func TestQuickCoverChain(t *testing.T) {
	f := func(ru, rv, rq rawObj) bool {
		q := rq.object(0)
		u := ru.object(1)
		v := rv.object(2)
		psd := NewChecker(q, PSD, AllFilters).Dominates(u, v)
		sssd := NewChecker(q, SSSD, AllFilters).Dominates(u, v)
		ssd := NewChecker(q, SSD, AllFilters).Dominates(u, v)
		// (F-SD is omitted here: it carries no ≠ side condition, so on
		// tie-heavy grids F-SD can hold for identically-distributed pairs
		// that P-SD correctly rejects; the continuous-input cover-chain
		// test covers the F-SD ⇒ P-SD implication.)
		if psd && !sssd {
			return false
		}
		if sssd && !ssd {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// No object ever dominates itself (the ≠ side condition) under the three
// proposed operators.
func TestQuickIrreflexive(t *testing.T) {
	f := func(ru, rq rawObj) bool {
		q := rq.object(0)
		u := ru.object(1)
		twin := ru.object(2)
		for _, op := range []Operator{SSD, SSSD, PSD} {
			c := NewChecker(q, op, AllFilters)
			if c.Dominates(u, twin) || c.Dominates(twin, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Filter configurations never change a verdict, even on degenerate
// tie-heavy inputs.
func TestQuickFilterAgreement(t *testing.T) {
	f := func(ru, rv, rq rawObj) bool {
		q := rq.object(0)
		u := ru.object(1)
		v := rv.object(2)
		for _, op := range Operators {
			base := NewChecker(q, op, FilterConfig{}).Dominates(u, v)
			for _, cfg := range []FilterConfig{
				{StatPruning: true}, {Geometric: true}, {Geometric: true, SphereValidation: true}, {LevelByLevel: true}, AllFilters,
			} {
				if NewChecker(q, op, cfg).Dominates(u, v) != base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
