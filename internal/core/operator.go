// Package core implements the paper's primary contribution: the spatial
// dominance operators S-SD, SS-SD, P-SD, F-SD and F⁺-SD (Sections 2, 4 and
// 5.1) together with their pruning/validation filters, and the progressive
// NN-candidate computation of Algorithm 1 (Section 5.2).
//
// The operators form the cover chain F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD
// (Theorem 2): a stronger operator dominates fewer pairs and therefore
// yields more NN candidates, but covers more NN-function families. S-SD is
// optimal w.r.t. N1, SS-SD w.r.t. N1∪N2, and P-SD w.r.t. N1∪N2∪N3
// (Theorems 5–7); F-SD is correct but not complete (Theorem 8).
package core

import "fmt"

// Operator selects a spatial dominance operator.
type Operator int

const (
	// SSD is stochastic spatial dominance: U_Q ≤st V_Q (Definition 2).
	// Optimal w.r.t. the all-pairs family N1.
	SSD Operator = iota
	// SSSD is strict stochastic spatial dominance: U_q ≤st V_q for every
	// query instance q (Definition 3). Optimal w.r.t. N1 ∪ N2.
	SSSD
	// PSD is peer spatial dominance: a match between U and V whose every
	// tuple satisfies t.u ⪯Q t.v (Definition 5). Optimal w.r.t. N1∪N2∪N3.
	PSD
	// FSD is full spatial dominance at instance level: every instance of U
	// is at least as close as every instance of V to every query instance.
	// Correct for N1∪N2∪N3 but not complete (Theorem 8).
	FSD
	// FPlusSD is the MBR-level baseline of [16]: F-SD evaluated on the
	// objects' minimum bounding rectangles only.
	FPlusSD
)

// Operators lists every operator in cover order (weakest dominance
// condition — fewest candidates — first).
var Operators = []Operator{SSD, SSSD, PSD, FSD, FPlusSD}

// String returns the name used in the paper's experiment section.
func (op Operator) String() string {
	switch op {
	case SSD:
		return "SSD"
	case SSSD:
		return "SSSD"
	case PSD:
		return "PSD"
	case FSD:
		return "FSD"
	case FPlusSD:
		return "F+SD"
	default:
		return fmt.Sprintf("Operator(%d)", int(op))
	}
}

// Covers reports whether op2 covers op (op ⊂ op2): dominance under op
// implies dominance under op2, per Theorem 2. Every operator covers itself.
func (op Operator) Covers(other Operator) bool {
	rank := func(o Operator) int {
		switch o {
		case FPlusSD:
			return 0
		case FSD:
			return 1
		case PSD:
			return 2
		case SSSD:
			return 3
		case SSD:
			return 4
		}
		return -1
	}
	return rank(other) <= rank(op)
}

// FilterConfig toggles the Section 5.1 filtering techniques, enabling the
// Appendix C (Figure 16) ablation. The zero value is the brute-force
// configuration ("BF"); AllFilters enables everything ("All").
type FilterConfig struct {
	// LevelByLevel enables level-by-level pruning/validation on the
	// objects' local R-trees ("L"): bounding distributions for S-SD/SS-SD
	// and the G⁻/G⁺ coarse flow networks for P-SD.
	LevelByLevel bool
	// StatPruning enables statistic-based pruning (min/mean/max of the
	// distance distributions, Theorem 11) and cover-based pruning ("P").
	StatPruning bool
	// Geometric enables the geometric techniques ("G"): restriction of
	// dominance tests to the query's convex hull, the in-hull early exit
	// for P-SD, and MBR cover validation (Theorem 4).
	Geometric bool
	// SphereValidation additionally validates on bounding hyperspheres
	// (the Long et al. [25] filter the paper points to after Theorem 4);
	// it only applies when Geometric is enabled.
	SphereValidation bool
}

// AllFilters enables every filtering technique (the "All" configuration).
var AllFilters = FilterConfig{
	LevelByLevel:     true,
	StatPruning:      true,
	Geometric:        true,
	SphereValidation: true,
}

// Stats counts the work performed by dominance checking; used by the
// Figure 16 ablation and the efficiency experiments.
type Stats struct {
	// InstanceComparisons counts atom consumptions in stochastic-order
	// scans plus pairwise instance distance evaluations — the metric
	// reported by Figure 16.
	InstanceComparisons int64
	// DominanceChecks counts top-level Dominates invocations.
	DominanceChecks int64
	// MBRValidations counts cover-based validations that short-circuited a
	// check at the MBR level.
	MBRValidations int64
	// SphereValidations counts validations decided by the bounding
	// hypersphere after the MBR test was inconclusive.
	SphereValidations int64
	// StatPrunes counts checks decided by statistic-based pruning.
	StatPrunes int64
	// LevelDecisions counts checks decided at a non-leaf local-tree level.
	LevelDecisions int64
	// FlowSolves counts max-flow invocations (P-SD).
	FlowSolves int64
	// HeapPops and EntryPrunes instrument Algorithm 1.
	HeapPops    int64
	EntryPrunes int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.InstanceComparisons += other.InstanceComparisons
	s.DominanceChecks += other.DominanceChecks
	s.MBRValidations += other.MBRValidations
	s.SphereValidations += other.SphereValidations
	s.StatPrunes += other.StatPrunes
	s.LevelDecisions += other.LevelDecisions
	s.FlowSolves += other.FlowSolves
	s.HeapPops += other.HeapPops
	s.EntryPrunes += other.EntryPrunes
}
