package core

import (
	"fmt"
	"io"

	"spatialdom/internal/uncertain"
)

// DominanceGraph is the full pairwise dominance relation over an object
// set for one query and operator — an analysis/visualization aid for
// understanding why a candidate set looks the way it does.
type DominanceGraph struct {
	Operator Operator
	Objects  []*uncertain.Object
	// Dominates[i][j] reports SD(Objects[i], Objects[j], Q).
	Dominates [][]bool
}

// BuildDominanceGraph evaluates every ordered pair. It is O(n²) dominance
// checks and intended for analysis on moderate n.
func BuildDominanceGraph(objs []*uncertain.Object, q *uncertain.Object, op Operator, cfg FilterConfig) *DominanceGraph {
	checker := NewChecker(q, op, cfg)
	g := &DominanceGraph{
		Operator:  op,
		Objects:   objs,
		Dominates: make([][]bool, len(objs)),
	}
	for i, u := range objs {
		g.Dominates[i] = make([]bool, len(objs))
		for j, v := range objs {
			if i != j {
				g.Dominates[i][j] = checker.Dominates(u, v)
			}
		}
	}
	return g
}

// DominatorCount returns, per object, how many others dominate it. Objects
// with count 0 are the NN candidates; count < k gives the k-skyband.
func (g *DominanceGraph) DominatorCount() []int {
	counts := make([]int, len(g.Objects))
	for i := range g.Dominates {
		for j, d := range g.Dominates[i] {
			if d {
				counts[j]++
			}
		}
	}
	return counts
}

// Candidates returns the objects not dominated by any other — the NNC set,
// which must agree with Algorithm 1's output.
func (g *DominanceGraph) Candidates() []*uncertain.Object {
	counts := g.DominatorCount()
	var out []*uncertain.Object
	for i, c := range counts {
		if c == 0 {
			out = append(out, g.Objects[i])
		}
	}
	return out
}

// WriteDOT renders the graph in Graphviz DOT format: one node per object
// (candidates drawn as boxes) and one edge per direct dominance, with
// transitively implied edges elided to keep the picture readable.
func (g *DominanceGraph) WriteDOT(w io.Writer) error {
	counts := g.DominatorCount()
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=TB;\n", g.Operator); err != nil {
		return err
	}
	for i, o := range g.Objects {
		shape := "ellipse"
		if counts[i] == 0 {
			shape = "box"
		}
		name := o.Label()
		if name == "" {
			name = fmt.Sprintf("obj%d", o.ID())
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q, shape=%s];\n", o.ID(), name, shape); err != nil {
			return err
		}
	}
	n := len(g.Objects)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !g.Dominates[i][j] {
				continue
			}
			// Elide i→j if some intermediate w has i→w→j (transitive
			// reduction on the fly; the relation is transitive, Theorem 9).
			implied := false
			for k := 0; k < n && !implied; k++ {
				if k != i && k != j && g.Dominates[i][k] && g.Dominates[k][j] {
					implied = true
				}
			}
			if !implied {
				if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", g.Objects[i].ID(), g.Objects[j].ID()); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
