package core

import (
	"math/rand"
	"sort"
	"testing"

	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// Regression: two objects with EXACTLY equal minimum pair distances where
// one dominates the other. Without tie batching, the dominated object
// could pop from the heap first and be wrongly emitted as a candidate.
func TestTiedMinDistDominatedObjectExcluded(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}}, nil)
	u := uncertain.MustNew(1, []geom.Point{{1, 0}, {2, 0}}, nil) // U_Q = {1, 2}
	v := uncertain.MustNew(2, []geom.Point{{0, 1}, {0, 3}}, nil) // V_Q = {1, 3}
	// Both min distances are exactly 1; S-SD(U,V) holds.
	if !NewChecker(q, SSD, AllFilters).Dominates(u, v) {
		t.Fatal("fixture broken: U must dominate V")
	}
	// Try both insertion orders (heap layouts differ).
	for _, objs := range [][]*uncertain.Object{{u, v}, {v, u}} {
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range []Operator{SSD, SSSD, PSD} {
			got := idx.Search(q, op).IDs()
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("%v (order %d first): candidates = %v, want [1]", op, objs[0].ID(), got)
			}
		}
	}
}

// Chains of ties: many objects at the same min distance with a dominance
// chain among them; only the chain head survives.
func TestTieChain(t *testing.T) {
	q := uncertain.MustNew(0, []geom.Point{{0, 0}}, nil)
	mk := func(id int, second float64) *uncertain.Object {
		// All share min distance 1 via an instance on the unit circle;
		// the second instance orders them.
		angle := float64(id)
		return uncertain.MustNew(id, []geom.Point{
			{1, 0},
			{second + angle*0, 0},
		}, nil)
	}
	objs := []*uncertain.Object{mk(1, 2), mk(2, 3), mk(3, 4), mk(4, 5)}
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Search(q, SSD).IDs()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("tie chain candidates = %v, want [1]", got)
	}
	// k-skyband over the tie chain: k members survive.
	for _, k := range []int{2, 3} {
		band := idx.SearchK(q, SSD, k).IDs()
		sort.Ints(band)
		if len(band) != k {
			t.Fatalf("k=%d band = %v", k, band)
		}
		for i := 0; i < k; i++ {
			if band[i] != i+1 {
				t.Fatalf("k=%d band = %v, want first %d chain members", k, band, k)
			}
		}
	}
}

// Randomized integer-grid datasets (tie-heavy) must match brute force —
// the grid analogue of TestSearchMatchesBruteForce.
func TestSearchMatchesBruteForceOnGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(1101))
	for iter := 0; iter < 15; iter++ {
		n := 15 + rng.Intn(25)
		objs := make([]*uncertain.Object, n)
		for i := range objs {
			m := 1 + rng.Intn(3)
			pts := make([]geom.Point, m)
			for k := range pts {
				pts[k] = geom.Point{float64(rng.Intn(12)), float64(rng.Intn(12))}
			}
			objs[i] = uncertain.MustNew(i+1, pts, nil)
		}
		q := uncertain.MustNew(0, []geom.Point{
			{float64(rng.Intn(12)), float64(rng.Intn(12))},
			{float64(rng.Intn(12)), float64(rng.Intn(12))},
		}, nil)
		idx, err := NewIndex(objs)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range Operators {
			for _, k := range []int{1, 2} {
				want := idsOf(BruteForceK(objs, q, op, k, AllFilters))
				got := idx.SearchK(q, op, k).IDs()
				sort.Ints(got)
				if len(got) != len(want) {
					t.Fatalf("iter %d %v k=%d: got %v, want %v", iter, op, k, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("iter %d %v k=%d: got %v, want %v", iter, op, k, got, want)
					}
				}
			}
		}
	}
}
