package core

// SearchParallel under real contention: more workers than GOMAXPROCS, a
// mix of heavy and light queries (so the work-stealing path actually
// fires), run under -race by `make check`. The assertions are the batch
// contract: results land in input order, exactly one hard error cancels
// the batch, and degraded (PartialResultError) slots survive alongside
// clean ones.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"spatialdom/internal/uncertain"
)

// stressSearcher fakes a KSearcher with per-query behavior keyed by query
// ID: heavy queries spin, designated IDs degrade or fail hard. Every
// result is tagged with the query's ID so slot/input alignment is
// checkable after a racy fan-out.
type stressSearcher struct {
	heavyEvery int          // every n-th query burns extra CPU
	partialAt  map[int]bool // these degrade (PartialResultError)
	hardAt     map[int]bool // these fail hard
	calls      atomic.Int64
}

func (s *stressSearcher) SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.calls.Add(1)
	id := q.ID()
	spin := 200
	if s.heavyEvery > 0 && id%s.heavyEvery == 0 {
		spin = 20000 // a heavy PSD-like query: two orders of magnitude more work
	}
	sink := 0
	for i := 0; i < spin; i++ {
		sink += i * i
	}
	if s.hardAt[id] {
		return nil, errors.New("hard storage failure")
	}
	res := &Result{Operator: op, Examined: id, Stats: Stats{HeapPops: int64(sink)}}
	if s.partialAt[id] {
		res.Incomplete = true
		pe := &PartialResultError{Result: res}
		pe.note(unavailable(uint32(id)), true)
		return res, pe
	}
	return res, nil
}

// TestSearchParallelInputOrderUnderContention oversubscribes the
// scheduler (workers = 4×GOMAXPROCS) with mixed heavy/light queries and
// asserts every result slot carries its own query's answer.
func TestSearchParallelInputOrderUnderContention(t *testing.T) {
	const n = 512
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	queries := fakeQueries(t, n)
	s := &stressSearcher{heavyEvery: 7}
	results, err := SearchParallel(context.Background(), s, queries, PSD, 1, SearchOptions{}, workers)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.calls.Load(); got != n {
		t.Fatalf("searcher ran %d times, want %d (work lost or duplicated)", got, n)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("slot %d lost its result", i)
		}
		if res.Examined != i {
			t.Fatalf("slot %d holds query %d's result — input order broken", i, res.Examined)
		}
	}
}

// TestSearchParallelMixedPartialAndCleanUnderContention: degraded slots
// survive in place (flagged), clean slots stay unflagged, and the batch
// reports no error — at workers > GOMAXPROCS so stealing and scratch
// pinning are both exercised.
func TestSearchParallelMixedPartialAndCleanUnderContention(t *testing.T) {
	const n = 256
	workers := 2*runtime.GOMAXPROCS(0) + 3
	partialAt := map[int]bool{}
	for i := 5; i < n; i += 11 {
		partialAt[i] = true
	}
	s := &stressSearcher{heavyEvery: 5, partialAt: partialAt}
	results, err := SearchParallel(context.Background(), s, fakeQueries(t, n), PSD, 1, SearchOptions{}, workers)
	if err != nil {
		t.Fatalf("partial slots must not fail the batch: %v", err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("slot %d lost its result", i)
		}
		if res.Incomplete != partialAt[i] {
			t.Fatalf("slot %d: Incomplete=%v, want %v", i, res.Incomplete, partialAt[i])
		}
	}
}

// TestSearchParallelOneHardErrorCancels: exactly one poisoned query in a
// big contended batch must surface its error and cancel outstanding work;
// completed slots keep their results, the poisoned slot stays nil.
func TestSearchParallelOneHardErrorCancels(t *testing.T) {
	const n, bad = 512, 137
	s := &stressSearcher{heavyEvery: 3, hardAt: map[int]bool{bad: true}}
	results, err := SearchParallel(context.Background(), s, fakeQueries(t, n), PSD, 1,
		SearchOptions{}, 4*runtime.GOMAXPROCS(0))
	if err == nil {
		t.Fatal("hard error must surface from the batch")
	}
	if results[bad] != nil {
		t.Fatal("the failed slot must stay nil")
	}
	if got := s.calls.Load(); got > n {
		t.Fatalf("searcher ran %d times for %d queries", got, n)
	}
	for i, res := range results {
		if res != nil && res.Examined != i {
			t.Fatalf("slot %d holds query %d's result", i, res.Examined)
		}
	}
}

// TestSearchParallelMatchesSerialOnRealIndex: the full affinity + stealing
// fan-out over the real in-memory index returns byte-identical candidate
// sequences to serial searches, at workers > GOMAXPROCS.
func TestSearchParallelMatchesSerialOnRealIndex(t *testing.T) {
	idx, ds := engineFixture(t, 300, 51)
	queries := ds.Queries(24, 5, 250, 52)
	workers := 2*runtime.GOMAXPROCS(0) + 1
	for _, op := range []Operator{PSD, SSSD} {
		batch, err := SearchParallelOpts(context.Background(), idx, queries, op, 2,
			SearchOptions{Filters: AllFilters}, BatchOptions{Workers: workers, Admission: NewAdmission(2)})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			serial, err := idx.SearchKCtx(context.Background(), q, op, 2, SearchOptions{Filters: AllFilters})
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[i].Candidates) != len(serial.Candidates) {
				t.Fatalf("%v query %d: batch %d candidates, serial %d",
					op, i, len(batch[i].Candidates), len(serial.Candidates))
			}
			for j := range serial.Candidates {
				if batch[i].Candidates[j].Object.ID() != serial.Candidates[j].Object.ID() {
					t.Fatalf("%v query %d: candidate %d differs", op, i, j)
				}
			}
		}
	}
}
