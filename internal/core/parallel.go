package core

// Parallel batch search: queries are independent (each search builds its
// own Checker and scratch, and both built-in backends are internally
// sharded), so a query batch is embarrassingly parallel. This file is the
// one fan-out loop every caller shares — the public API, the HTTP server's
// batch endpoint and the harness all funnel through it. The contention
// machinery it leans on (per-worker scratch affinity, the work-stealing
// segment queue, batch admission) lives in batch.go.

import (
	"context"
	"runtime"
	"sync"

	"spatialdom/internal/uncertain"
)

// KSearcher is the minimal context-aware search surface a parallel batch
// needs. *Index and diskindex.Index implement it; so does any custom
// wrapper whose SearchKCtx is safe for concurrent use.
type KSearcher interface {
	SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error)
}

// BatchOptions tunes one SearchParallel batch.
type BatchOptions struct {
	// Workers is the fan-out width; <= 0 means GOMAXPROCS. The fan-out
	// never exceeds len(queries).
	Workers int
	// Admission, when non-nil, gates every query execution: a worker
	// holds one token per running search, so batches sharing an Admission
	// interleave at query granularity instead of starving each other. The
	// zero value (nil) admits everything immediately.
	Admission *Admission
}

// SearchParallel runs one search per query, fanned out over workers
// goroutines, and returns the results in input order. workers <= 0 uses
// GOMAXPROCS; the fan-out never exceeds len(queries).
//
// The first hard search error cancels the remaining work and is returned
// with the partial results (nil at unfinished positions). Cancelling ctx
// stops the batch the same way. A degraded search (PartialResultError)
// does NOT cancel the batch: its traversal completed, its result is stored
// with Result.Incomplete set, and the remaining queries proceed — one
// quarantined page must not fail a whole batch. opts is shared by every
// search; an OnCandidate callback will therefore be invoked from multiple
// goroutines and must be safe for that.
func SearchParallel(ctx context.Context, s KSearcher, queries []*uncertain.Object, op Operator, k int, opts SearchOptions, workers int) ([]*Result, error) {
	return SearchParallelOpts(ctx, s, queries, op, k, opts, BatchOptions{Workers: workers})
}

// SearchParallelOpts is SearchParallel with explicit batch tuning. Each
// worker goroutine is pinned to one engine scratch for the whole batch
// (no per-query pool traffic), owns a contiguous segment of the query
// slice on a private cache line, and steals single queries from the back
// of the fullest remaining segment once its own is drained — heavy PSD
// queries at the tail shed work instead of convoying the batch.
func SearchParallelOpts(ctx context.Context, s KSearcher, queries []*uncertain.Object, op Operator, k int, opts SearchOptions, bo BatchOptions) ([]*Result, error) {
	results := make([]*Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := bo.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	queue := newWorkQueue(len(queries), workers)
	scratches := acquireScratches(workers)
	defer releaseScratches(scratches)

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One context per worker: it carries the worker's pinned
			// scratch to every SearchBackend call the searcher makes on
			// this goroutine.
			//nnc:allow scratch-escape: batch-scoped affinity — the worker holds its scratch for the whole batch and wg.Wait() runs before releaseScratches returns them to the pool
			wctx := withPinnedScratch(ctx, scratches[w])
			for {
				i, ok := queue.next(w)
				if !ok || ctx.Err() != nil {
					return
				}
				if bo.Admission != nil {
					if bo.Admission.acquire(ctx) != nil {
						return // batch canceled while waiting for a token
					}
				}
				res, err := s.SearchKCtx(wctx, queries[i], op, k, opts)
				if bo.Admission != nil {
					bo.Admission.release()
				}
				if err != nil {
					if _, isPartial := AsPartial(err); !isPartial {
						errOnce.Do(func() {
							firstErr = err
							cancel()
						})
						return
					}
					// Degraded but complete: keep the flagged result and
					// keep the batch going.
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()
	return results, firstErr
}

// SearchKParallel is SearchParallel over the in-memory index.
func (idx *Index) SearchKParallel(ctx context.Context, queries []*uncertain.Object, op Operator, k int, opts SearchOptions, workers int) ([]*Result, error) {
	return SearchParallel(ctx, idx, queries, op, k, opts, workers)
}
