package core

// Parallel batch search: queries are independent (each search builds its
// own Checker and pooled scratch, and both built-in backends are
// internally sharded), so a query batch is embarrassingly parallel. This
// file is the one fan-out loop every caller shares — the public API,
// the HTTP server's callers and the harness all funnel through it.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"spatialdom/internal/uncertain"
)

// KSearcher is the minimal context-aware search surface a parallel batch
// needs. *Index and diskindex.Index implement it; so does any custom
// wrapper whose SearchKCtx is safe for concurrent use.
type KSearcher interface {
	SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error)
}

// SearchParallel runs one search per query, fanned out over workers
// goroutines, and returns the results in input order. workers <= 0 uses
// GOMAXPROCS; the fan-out never exceeds len(queries).
//
// The first hard search error cancels the remaining work and is returned
// with the partial results (nil at unfinished positions). Cancelling ctx
// stops the batch the same way. A degraded search (PartialResultError)
// does NOT cancel the batch: its traversal completed, its result is stored
// with Result.Incomplete set, and the remaining queries proceed — one
// quarantined page must not fail a whole batch. opts is shared by every
// search; an OnCandidate callback will therefore be invoked from multiple
// goroutines and must be safe for that.
func SearchParallel(ctx context.Context, s KSearcher, queries []*uncertain.Object, op Operator, k int, opts SearchOptions, workers int) ([]*Result, error) {
	results := make([]*Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) || ctx.Err() != nil {
					return
				}
				res, err := s.SearchKCtx(ctx, queries[i], op, k, opts)
				if err != nil {
					if _, isPartial := AsPartial(err); !isPartial {
						errOnce.Do(func() {
							firstErr = err
							cancel()
						})
						return
					}
					// Degraded but complete: keep the flagged result and
					// keep the batch going.
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// SearchKParallel is SearchParallel over the in-memory index.
func (idx *Index) SearchKParallel(ctx context.Context, queries []*uncertain.Object, op Operator, k int, opts SearchOptions, workers int) ([]*Result, error) {
	return SearchParallel(ctx, idx, queries, op, k, opts, workers)
}
