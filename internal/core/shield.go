package core

// Answer shielding: the geometry behind the serving tier's precise cache
// invalidation. A cached k-candidate answer for query Q survives a dataset
// mutation exactly when the mutation provably cannot change the candidate
// set or any candidate's dominator count:
//
// Insert of a new object O. Two conditions, both derived from the same
// facts Algorithm 1's correctness rests on, jointly shield the answer:
//
//  1. O dominates no cached candidate. Statistic necessity (Theorem 11's
//     min statistic, the property the engine orders its heap by) says any
//     dominator U of V has min(U_Q) <= min(V_Q). Each candidate's exact
//     key min(V_Q) is recorded in the answer, and min(O_Q) is lower-
//     bounded by the metric's rect-rect distance between O's MBR and Q's
//     MBR — so RectMinDist(O.MBR, Q.MBR) > max candidate key rules every
//     domination out, leaving all dominator counts intact.
//
//  2. O is not itself a candidate. Theorem 4 (cover-based validation): if
//     k cached candidates' MBRs strictly rect-dominate O's MBR w.r.t. the
//     query instances, every object inside that MBR — O in particular —
//     has at least k dominators and is outside the k-skyband. Candidates
//     are precisely the band Algorithm 1 would have tested O against, so
//     the test needs nothing beyond the cached answer.
//
// Since O neither joins the band nor dominates a band member, and
// reported dominator counts only range over band members (every true
// dominator of a candidate is itself a candidate — see the engine header:
// a non-band dominator would carry k dominators of its own into V by
// transitivity), the candidate list is bit-for-bit unchanged.
//
// Delete of an object X needs no geometry at all: by the same
// transitivity argument, deleting a non-candidate X can neither promote
// another object into the band (X's own >= k dominators keep dominating
// anything X dominated) nor change a count (non-band objects are never
// counted). So an answer is affected only when X is one of its result
// IDs — the front door tests membership directly and nothing here is
// needed beyond that rule, documented where the proof lives.

import (
	"spatialdom/internal/distr"
	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// AnswerShield is the per-answer invalidation decider, built once when a
// result enters the cache and consulted on every subsequent insert. It
// retains only rectangles and (hull) query points — no objects, no
// checker arenas — so an entry's shield costs a few hundred bytes.
type AnswerShield struct {
	metric  geom.Metric
	euclid  bool
	qmbr    geom.Rect
	hullPts []geom.Point
	k       int
	// maxKey is the largest exact candidate key min(V_Q); an inserted
	// object whose MBR lower bound exceeds it cannot dominate anything in
	// the answer.
	maxKey float64
	// band holds the candidates' MBRs for the Theorem 4 test.
	band []geom.Rect
}

// shieldSlack mirrors the tolerances the checker decides dominance under
// (distr.Eps on statistic comparisons, tieEps on heap-key ties): the
// necessity bound must clear both before an insert is declared harmless.
const shieldSlack = distr.Eps + tieEps

// NewAnswerShield captures what a cached answer needs to survive
// mutations: the query's MBR and hull instances, the candidate MBRs and
// the largest exact candidate key. Under the Euclidean metric the point
// set is reduced to the query's convex hull (the paper's geometric
// restriction, exact for L2); other metrics keep every instance, exactly
// as the checker does.
func NewAnswerShield(q *uncertain.Object, m geom.Metric, k int, cands []Candidate) *AnswerShield {
	if m == nil {
		m = geom.Euclidean
	}
	s := &AnswerShield{
		metric: m,
		euclid: m == geom.Euclidean,
		qmbr:   q.MBR(),
		k:      k,
	}
	if s.euclid {
		for _, j := range q.HullIndices() {
			s.hullPts = append(s.hullPts, q.Instance(j))
		}
	} else {
		for j := 0; j < q.Len(); j++ {
			s.hullPts = append(s.hullPts, q.Instance(j))
		}
	}
	s.band = make([]geom.Rect, len(cands))
	for i, c := range cands {
		s.band[i] = c.Object.MBR()
		if c.MinDist > s.maxKey {
			s.maxKey = c.MinDist
		}
	}
	return s
}

// ShieldsInsert reports whether inserting an object bounded by r provably
// leaves the shielded answer byte-identical: r is too far to dominate any
// candidate (statistic necessity against the recorded keys) AND at least
// k candidates strictly rect-dominate r (Theorem 4, so the new object is
// outside the k-skyband). A false return means "could affect" — the
// caller must drop the cached answer.
func (s *AnswerShield) ShieldsInsert(r geom.Rect) bool {
	if len(r.Lo) != len(s.qmbr.Lo) {
		// Dimension mismatch should have been rejected upstream; treat it
		// as unshielded so a bad insert can never preserve a stale answer.
		return false
	}
	// Condition 1: min(O_Q) >= RectMinDist(r, qmbr) > maxKey + slack
	// means O dominates nothing in the answer.
	if s.metric.RectMinDist(r, s.qmbr) <= s.maxKey+shieldSlack*(1+s.maxKey) {
		return false
	}
	// Condition 2: k strict MBR dominators among the candidates put O
	// outside the band.
	count := 0
	for _, b := range s.band {
		if le, strict := s.rectLE(b, r); le && strict {
			count++
			if count >= s.k {
				return true
			}
		}
	}
	return false
}

// Candidates reports how many candidate rectangles the shield retains.
func (s *AnswerShield) Candidates() int { return len(s.band) }

// MaxKey reports the largest exact candidate key the shield guards.
func (s *AnswerShield) MaxKey() float64 { return s.maxKey }

// rectLE is the checker's MBR-level u ⪯Q v test (psd.go), restated over
// the shield's retained hull points: every point of a at least as close
// as every point of b to every hull query instance, with a strictness
// witness. Strict MBR separation implies F-SD and, through the cover
// chain (Theorem 2), dominance under every operator — which is why the
// shield needs no record of which operator produced the answer.
func (s *AnswerShield) rectLE(a, b geom.Rect) (le, strict bool) {
	le = true
	for _, q := range s.hullPts {
		var maxA, minB float64
		if s.euclid {
			maxA = a.MaxSqDistPoint(q)
			minB = b.MinSqDistPoint(q)
		} else {
			maxA = s.metric.MaxDistRect(q, a)
			minB = s.metric.MinDistRect(q, b)
		}
		if maxA > minB {
			return false, false
		}
		if maxA < minB {
			strict = true
		}
	}
	return le, strict
}
