package core

// Batch execution context: the machinery that makes SearchParallel scale
// on real cores instead of merely spawning goroutines.
//
// Three independent contention sources are addressed here:
//
//  1. Scratch affinity. A single sync.Pool behind every search means a
//     parallel batch does one Get and one Put per query — each a shared
//     per-P structure touch, and under oversubscription an arena built hot
//     on one core migrates to another, dragging its cache footprint along.
//     A batch instead pins one *searchScratch to each worker for the whole
//     batch (acquireScratches/releaseScratches), handed to the engine
//     through the worker's context; single-shot searches keep the pool.
//
//  2. Work distribution. A lone atomic "next query" counter is one cache
//     line every worker bounces on every dequeue, and a run of heavy PSD
//     queries at the tail serializes behind it. The batch is split into
//     one contiguous segment per worker — each segment's bounds live on
//     their own cache line — so the steady-state dequeue touches only the
//     worker's own line. Workers that drain their segment steal single
//     queries from the back of the richest remaining segment, so stragglers
//     shed their tail instead of convoying the batch.
//
//  3. Admission. One huge batch must not starve every concurrent caller of
//     the same process. An Admission is a token bucket shared by any number
//     of batches; a worker holds a token only while executing one query, so
//     competing batches interleave at query granularity instead of queuing
//     whole-batch behind whole-batch.

import (
	"context"
	"sync/atomic"
)

// --- work-stealing distribution ----------------------------------------------

// workSegment is one worker's contiguous slice [lo, hi) of the batch's
// query indices, packed into a single atomic word (hi<<32 | lo) so the
// owner's take-from-front and a thief's take-from-back are both one CAS
// and can never hand out the same index twice. The padding keeps each
// segment on its own cache line: the owner's fast path shares nothing.
type workSegment struct {
	bounds atomic.Uint64
	_      [56]byte
}

func packBounds(lo, hi uint32) uint64 { return uint64(hi)<<32 | uint64(lo) }

func unpackBounds(b uint64) (lo, hi uint32) { return uint32(b), uint32(b >> 32) }

// takeFront claims the segment's lowest remaining index (owner side).
func (s *workSegment) takeFront() (int, bool) {
	for {
		b := s.bounds.Load()
		lo, hi := unpackBounds(b)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(b, packBounds(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// takeBack claims the segment's highest remaining index (thief side).
// Stealing from the opposite end keeps thieves off the cache line the
// owner is about to CAS whenever the segment is more than one item deep.
func (s *workSegment) takeBack() (int, bool) {
	for {
		b := s.bounds.Load()
		lo, hi := unpackBounds(b)
		if lo >= hi {
			return 0, false
		}
		if s.bounds.CompareAndSwap(b, packBounds(lo, hi-1)) {
			return int(hi - 1), true
		}
	}
}

// remaining reports how many indices the segment still holds.
func (s *workSegment) remaining() int {
	lo, hi := unpackBounds(s.bounds.Load())
	if lo >= hi {
		return 0
	}
	return int(hi - lo)
}

// workQueue distributes [0, n) over per-worker segments.
type workQueue struct {
	segs []workSegment
}

// newWorkQueue splits n query indices into one balanced contiguous
// segment per worker (the first n%workers segments get the extra item).
func newWorkQueue(n, workers int) *workQueue {
	q := &workQueue{segs: make([]workSegment, workers)}
	base, extra := n/workers, n%workers
	lo := 0
	for w := range q.segs {
		hi := lo + base
		if w < extra {
			hi++
		}
		q.segs[w].bounds.Store(packBounds(uint32(lo), uint32(hi)))
		lo = hi
	}
	return q
}

// next returns the next query index for worker self: its own segment's
// front while it lasts, then single steals from the back of whichever
// victim has the most work left. Returns false only when every segment
// is empty.
func (q *workQueue) next(self int) (int, bool) {
	if i, ok := q.segs[self].takeFront(); ok {
		return i, true
	}
	for {
		best, bestRem := -1, 0
		for v := range q.segs {
			if v == self {
				continue
			}
			if r := q.segs[v].remaining(); r > bestRem {
				best, bestRem = v, r
			}
		}
		if best < 0 {
			return 0, false
		}
		if i, ok := q.segs[best].takeBack(); ok {
			return i, true
		}
		// Lost the race for the victim's last items; rescan. Total
		// remaining work shrank, so this terminates.
	}
}

// --- batch admission ---------------------------------------------------------

// Admission is a token bucket shared across SearchParallel batches: each
// worker holds one token per executing query, so the total number of
// batch-path searches running at once never exceeds the limit and
// concurrent batches interleave at query granularity — a 10,000-query
// batch cannot lock a 3-query batch (or the process's other work) out of
// the CPUs for its whole duration. A nil *Admission admits everything.
type Admission struct {
	tokens chan struct{}
}

// NewAdmission builds an admission gate that lets at most limit batch
// queries execute concurrently; limit < 1 is clamped to 1.
func NewAdmission(limit int) *Admission {
	if limit < 1 {
		limit = 1
	}
	a := &Admission{tokens: make(chan struct{}, limit)}
	for i := 0; i < limit; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// Limit reports the gate's concurrent-query capacity.
func (a *Admission) Limit() int { return cap(a.tokens) }

// acquire blocks until a token is free or ctx is done.
func (a *Admission) acquire(ctx context.Context) error {
	select {
	case <-a.tokens:
		return nil
	default:
	}
	select {
	case <-a.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a token taken by acquire.
func (a *Admission) release() { a.tokens <- struct{}{} }

// TryAcquire claims a token without blocking. It exists for callers that
// shed load instead of queueing — a serving tier that answers 429 when
// the gate is full must never park a request goroutine here.
func (a *Admission) TryAcquire() bool {
	select {
	case <-a.tokens:
		return true
	default:
		return false
	}
}

// Release returns a token claimed by TryAcquire.
func (a *Admission) Release() { a.release() }

// InFlight reports how many tokens are currently held.
func (a *Admission) InFlight() int { return cap(a.tokens) - len(a.tokens) }

// --- pinned per-worker scratch -----------------------------------------------

// pinnedScratchKey carries a batch worker's scratch through the context to
// SearchBackend, which then skips the pool entirely. The key is private to
// this package: only SearchParallelOpts plants it, and the value never
// crosses an API boundary.
type pinnedScratchKey struct{}

// withPinnedScratch hands sc to every engine search run under the
// returned context. The caller owns sc's lifetime and must not run two
// searches under the same context concurrently.
func withPinnedScratch(ctx context.Context, sc *searchScratch) context.Context {
	return context.WithValue(ctx, pinnedScratchKey{}, sc)
}

// pinnedScratch recovers the batch worker's scratch, if any.
func pinnedScratch(ctx context.Context) (*searchScratch, bool) {
	sc, ok := ctx.Value(pinnedScratchKey{}).(*searchScratch)
	return sc, ok
}

// acquireScratches takes n scratches out of the pool for a batch's
// workers. Taking them up front (instead of per query) is the whole
// point: each worker reuses one arena for its entire share of the batch,
// so the slabs reach their high-water sizes once and stay cache-resident
// on the core that fills them.
func acquireScratches(n int) []*searchScratch {
	scs := make([]*searchScratch, n)
	for i := range scs {
		scs[i] = scratchPool.Get().(*searchScratch)
	}
	return scs
}

// releaseScratches returns a batch's scratches to the pool. Each scratch
// was cleared by the engine after its last search, so they go back clean.
func releaseScratches(scs []*searchScratch) {
	for _, sc := range scs {
		scratchPool.Put(sc)
	}
}
