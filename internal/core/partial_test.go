package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"spatialdom/internal/faults"
	"spatialdom/internal/geom"
	"spatialdom/internal/uncertain"
)

// faultyBackend is a hand-built two-level tree for exercising the engine's
// degradation paths without a disk: the root holds a set of resolvable
// objects, one unavailable subtree, and one unavailable object reference.
type faultyBackend struct {
	objs []*uncertain.Object // resolvable, Obj set eagerly
	// badNodeErr/badObjErr, when non-nil, are returned from the bad
	// subtree's Expand and the bad object's Resolve.
	badNodeErr error
	badObjErr  error
}

func (b *faultyBackend) Root() (NodeRef, error) { return NodeRef{ID: 1}, nil }

func (b *faultyBackend) Expand(n NodeRef, visit func(BackendEntry)) error {
	switch n.ID {
	case 1:
		for _, o := range b.objs {
			visit(BackendEntry{Rect: o.MBR(), Obj: ObjRef{Obj: o}})
		}
		if b.badNodeErr != nil {
			// Nearer than every object, so entry pruning (Theorem 4) cannot
			// discard it before the engine tries — and fails — to expand it.
			visit(BackendEntry{
				Rect:   geom.Rect{Lo: geom.Point{0.1}, Hi: geom.Point{0.2}},
				IsNode: true,
				Node:   NodeRef{ID: 2},
			})
		}
		if b.badObjErr != nil {
			visit(BackendEntry{
				Rect: geom.Rect{Lo: geom.Point{0.5}, Hi: geom.Point{0.5}},
				Obj:  ObjRef{ID: 999},
			})
		}
		return nil
	case 2:
		return b.badNodeErr
	}
	return fmt.Errorf("unknown node %d", n.ID)
}

func (b *faultyBackend) Resolve(r ObjRef) (*uncertain.Object, error) {
	if r.Obj != nil {
		return r.Obj, nil
	}
	return nil, b.badObjErr
}

func (b *faultyBackend) AccessStats() IOStats { return IOStats{} }

func obj1d(t *testing.T, id int, x float64) *uncertain.Object {
	t.Helper()
	o, err := uncertain.New(id, []geom.Point{{x}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func unavailable(page uint32) error {
	return &faults.PageError{Op: "read", Page: page, Err: faults.ErrChecksum, Quarantined: true}
}

func TestSearchBackendDegradesOnUnavailable(t *testing.T) {
	b := &faultyBackend{
		objs:       []*uncertain.Object{obj1d(t, 1, 1), obj1d(t, 2, 2), obj1d(t, 3, 30)},
		badNodeErr: unavailable(7),
		badObjErr:  unavailable(8),
	}
	q := obj1d(t, 0, 0)
	res, err := SearchBackend(context.Background(), b, q, PSD, 1, SearchOptions{Filters: AllFilters})

	pe, ok := AsPartial(err)
	if !ok {
		t.Fatalf("err = %v, want *PartialResultError", err)
	}
	if res == nil || pe.Result != res {
		t.Fatal("partial error must carry the result it degrades")
	}
	if !res.Incomplete {
		t.Fatal("degraded result not flagged Incomplete")
	}
	if pe.UnreadableNodes != 1 || pe.UnreadableObjects != 1 {
		t.Fatalf("skip counts = %d/%d, want 1/1", pe.UnreadableNodes, pe.UnreadableObjects)
	}
	if !errors.Is(pe, faults.ErrUnavailable) || !errors.Is(pe, faults.ErrChecksum) {
		t.Fatal("partial must unwrap to its storage causes")
	}
	// The readable portion is fully searched: object 1 is the nearest
	// undominated candidate.
	ids := res.IDs()
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("candidates = %v, want [1]", ids)
	}
}

func TestSearchBackendHardErrorAborts(t *testing.T) {
	hard := errors.New("disk on fire")
	b := &faultyBackend{
		objs:       []*uncertain.Object{obj1d(t, 1, 1)},
		badNodeErr: hard, // not ErrUnavailable: must abort
	}
	q := obj1d(t, 0, 0)
	res, err := SearchBackend(context.Background(), b, q, PSD, 1, SearchOptions{Filters: AllFilters})
	if !errors.Is(err, hard) {
		t.Fatalf("err = %v, want the hard error", err)
	}
	if _, ok := AsPartial(err); ok {
		t.Fatal("hard error must not be partial")
	}
	if res != nil {
		t.Fatal("hard error must return nil Result")
	}
}

func TestSearchBackendCleanHasNoFlag(t *testing.T) {
	b := &faultyBackend{objs: []*uncertain.Object{obj1d(t, 1, 1), obj1d(t, 2, 2)}}
	q := obj1d(t, 0, 0)
	res, err := SearchBackend(context.Background(), b, q, PSD, 1, SearchOptions{Filters: AllFilters})
	if err != nil || res.Incomplete {
		t.Fatalf("clean search: err=%v incomplete=%v", err, res.Incomplete)
	}
}

func TestStreamBackendDeliversDegradedResult(t *testing.T) {
	b := &faultyBackend{
		objs:       []*uncertain.Object{obj1d(t, 1, 1)},
		badNodeErr: unavailable(7),
	}
	q := obj1d(t, 0, 0)
	out, done := StreamBackend(context.Background(), b, q, PSD, SearchOptions{Filters: AllFilters})
	got := 0
	for range out {
		got++
	}
	res, ok := <-done
	if !ok || res == nil {
		t.Fatal("degraded stream must still deliver its final result")
	}
	if !res.Incomplete {
		t.Fatal("streamed degraded result not flagged")
	}
	if got != len(res.Candidates) {
		t.Fatalf("streamed %d candidates, result has %d", got, len(res.Candidates))
	}
}

// partialSearcher fakes a KSearcher whose designated queries degrade (or
// fail hard) for SearchParallel semantics tests.
type partialSearcher struct {
	partialAt map[int]bool
	hardAt    map[int]bool
}

func (s *partialSearcher) SearchKCtx(ctx context.Context, q *uncertain.Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.hardAt[q.ID()] {
		return nil, errors.New("hard failure")
	}
	res := &Result{Operator: op}
	if s.partialAt[q.ID()] {
		res.Incomplete = true
		pe := &PartialResultError{Result: res}
		pe.note(unavailable(9), true)
		return res, pe
	}
	return res, nil
}

func TestSearchParallelKeepsGoingOnPartial(t *testing.T) {
	queries := make([]*uncertain.Object, 6)
	for i := range queries {
		queries[i] = obj1d(t, i, float64(i))
	}
	s := &partialSearcher{partialAt: map[int]bool{1: true, 4: true}}
	results, err := SearchParallel(context.Background(), s, queries, PSD, 1, SearchOptions{}, 2)
	if err != nil {
		t.Fatalf("partial slots must not fail the batch: %v", err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("slot %d lost its result", i)
		}
		if res.Incomplete != s.partialAt[i] {
			t.Fatalf("slot %d: Incomplete=%v, want %v", i, res.Incomplete, s.partialAt[i])
		}
	}
}

func TestSearchParallelHardErrorStillCancels(t *testing.T) {
	queries := make([]*uncertain.Object, 8)
	for i := range queries {
		queries[i] = obj1d(t, i, float64(i))
	}
	s := &partialSearcher{hardAt: map[int]bool{3: true}}
	_, err := SearchParallel(context.Background(), s, queries, PSD, 1, SearchOptions{}, 2)
	if err == nil {
		t.Fatal("hard error must surface from the batch")
	}
}

func TestAsPartial(t *testing.T) {
	pe := &PartialResultError{}
	pe.note(unavailable(1), true)
	pe.note(unavailable(2), false)
	if got, ok := AsPartial(fmt.Errorf("wrapped: %w", pe)); !ok || got != pe {
		t.Fatal("AsPartial should see through wrapping")
	}
	if _, ok := AsPartial(nil); ok {
		t.Fatal("AsPartial(nil) must be false")
	}
	if _, ok := AsPartial(errors.New("x")); ok {
		t.Fatal("AsPartial on unrelated error must be false")
	}
	if pe.UnreadableNodes != 1 || pe.UnreadableObjects != 1 || len(pe.Errs) != 2 {
		t.Fatalf("note bookkeeping wrong: %+v", pe)
	}
	// The cap bounds retained causes, not counts.
	for i := 0; i < 2*maxPartialErrs; i++ {
		pe.note(unavailable(uint32(i)), true)
	}
	if len(pe.Errs) != maxPartialErrs {
		t.Fatalf("retained %d causes, cap is %d", len(pe.Errs), maxPartialErrs)
	}
	if pe.UnreadableNodes != 1+2*maxPartialErrs {
		t.Fatalf("counts must stay exact past the cap: %d", pe.UnreadableNodes)
	}
}
