package core

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestStreamDeliversAllCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	objs := randDataset(rng, 60, 2, 5, 80)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	q := randObject(rng, 0, 2, 3, randCenter(rng, 2, 80), 4)

	want := idx.Search(q, SSSD).IDs()

	out, done := idx.Stream(context.Background(), q, SSSD, SearchOptions{Filters: AllFilters})
	var got []int
	for c := range out {
		got = append(got, c.Object.ID())
	}
	res := <-done
	if res == nil {
		t.Fatal("no final result")
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream order differs at %d: %v vs %v", i, got, want)
		}
	}
	if len(res.Candidates) != len(want) {
		t.Fatal("final result incomplete")
	}
}

func TestStreamCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	objs := randDataset(rng, 200, 2, 6, 80)
	idx, err := NewIndex(objs)
	if err != nil {
		t.Fatal(err)
	}
	// A huge query extent makes for many candidates under F+SD.
	q := randObject(rng, 0, 2, 4, randCenter(rng, 2, 80), 30)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, done := idx.Stream(ctx, q, FPlusSD, SearchOptions{Filters: AllFilters})
	received := 0
	for range out {
		received++
		if received == 1 {
			cancel()
		}
	}
	select {
	case res, ok := <-done:
		if ok && res != nil && received >= len(res.Candidates) && received > 1 {
			t.Fatalf("cancel did not stop the stream (%d received)", received)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after cancel")
	}
	if received == 0 {
		t.Fatal("no candidate received before cancel")
	}
}
