package core

// Graceful degradation: when a disk-resident backend has quarantined pages,
// a traversal that reaches one cannot read that subtree or object, but the
// rest of the search is still valid. Instead of aborting, the engine skips
// the unreadable reference, finishes the traversal, and returns the result
// together with a PartialResultError describing exactly what was skipped —
// so callers get the distinction between "complete answer", "flagged
// partial answer" and "hard failure" as types, never a silently shrunken
// candidate set.

import (
	"errors"
	"fmt"
	"time"
)

// maxPartialErrs caps the representative storage errors retained on a
// PartialResultError; the counts are always exact.
const maxPartialErrs = 8

// PartialResultError reports a search whose traversal completed but had to
// skip storage it could not read (quarantined pages). Result is always
// non-nil and holds every candidate provable from the readable portion of
// the index; the counts say how much of the tree was skipped. It matches
// errors.As for *PartialResultError, and errors.Is(err,
// faults.ErrUnavailable) through the retained causes.
type PartialResultError struct {
	// Result is the search outcome over the readable subset of the index.
	Result *Result
	// UnreadableNodes and UnreadableObjects count skipped subtree
	// expansions and skipped object resolutions.
	UnreadableNodes   int
	UnreadableObjects int
	// UnreachableShards counts whole cluster shards (every replica dead,
	// retries and failover exhausted) whose candidates are missing from
	// Result. Zero on single-node searches. A scatter-gather router also
	// folds the per-shard skip counts reported by degraded-but-reachable
	// shards into the two fields above, so the triple says exactly how
	// much of the fleet's data the answer could not see.
	UnreachableShards int
	// RetryAfterHint, when positive, is the earliest time the producer
	// expects the missing capacity back (e.g. a shard breaker's half-open
	// probe time). Servers surface it as a Retry-After header on the 206.
	RetryAfterHint time.Duration
	// Errs holds up to maxPartialErrs representative causes.
	Errs []error
}

// Error implements error.
func (e *PartialResultError) Error() string {
	if e.UnreachableShards > 0 {
		return fmt.Sprintf("core: partial result: %d shards unreachable, %d subtrees and %d objects unreadable",
			e.UnreachableShards, e.UnreadableNodes, e.UnreadableObjects)
	}
	return fmt.Sprintf("core: partial result: %d subtrees and %d objects unreadable",
		e.UnreadableNodes, e.UnreadableObjects)
}

// Unwrap exposes the retained causes, so errors.Is sees through a partial
// result to the underlying fault class (faults.ErrUnavailable et al.).
func (e *PartialResultError) Unwrap() []error { return e.Errs }

// note records one skipped read.
func (e *PartialResultError) note(err error, node bool) {
	if node {
		e.UnreadableNodes++
	} else {
		e.UnreadableObjects++
	}
	if len(e.Errs) < maxPartialErrs {
		e.Errs = append(e.Errs, err)
	}
}

// AddShard records one unreachable cluster shard (every replica down,
// retries exhausted), retaining cause as a representative error subject to
// the same cap as storage faults.
func (e *PartialResultError) AddShard(cause error) {
	e.UnreachableShards++
	if cause != nil && len(e.Errs) < maxPartialErrs {
		e.Errs = append(e.Errs, cause)
	}
}

// AsPartial unwraps err to its PartialResultError, if it carries one. The
// idiom for callers that serve degraded results:
//
//	res, err := backend.SearchKCtx(ctx, ...)
//	if pe, ok := core.AsPartial(err); ok {
//	    serveFlagged(pe.Result, pe) // degraded, not failed
//	} else if err != nil {
//	    fail(err)
//	}
func AsPartial(err error) (*PartialResultError, bool) {
	var pe *PartialResultError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}
