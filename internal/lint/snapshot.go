package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkSnapshotLifecycle enforces the refcounted epoch-snapshot protocol
// of DESIGN.md §2e, generalizing scratch-escape to the reader side of the
// mutable index:
//
//  1. balance — every call that acquires a snapshot (a module method named
//     acquire/Acquire returning a snapshot type) is matched by a
//     release/Release on all paths, deferred or explicit, with the same
//     branch-local walk lock-balance uses. Returning the snapshot to the
//     caller transfers ownership and is legal; acquiring one and dropping
//     the result leaks a refcount forever and is not.
//  2. escape — a snapshot reference may not outlive its acquire scope:
//     package-level stores, channel sends, go-statement arguments and
//     captures, and stores into fields of non-snapshot structs are all
//     flagged. Shrinking reslices of a snapshot-typed field
//     (m.retired = m.retired[1:]) introduce no new reference and pass.
//
// The writer-side retirement list (parking a superseded snapshot until
// its readers drain) is exactly such a field store by design; it carries
// a reviewed //nnc:allow rather than a carve-out here, so the exception
// stays visible at the site that needs it.
func checkSnapshotLifecycle(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			scanSnapshotEscapes(prog, pkg, f, r)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &snapWalker{prog: prog, pkg: pkg, r: r, fnName: fd.Name.Name}
				w.walkBlock(fd.Body)
				for _, h := range w.live() {
					r.Report(fd.Body.Rbrace, "snapshot-lifecycle",
						fmt.Sprintf("%s: function end reached with snapshot %s still acquired (line %d); release it on every path or use defer",
							fd.Name.Name, h.name, r.fset.Position(h.pos).Line))
				}
			}
		}
	}
}

// isSnapshotType reports whether t (possibly behind pointers/slices) is a
// module-declared snapshot type — the name-driven rule matching how
// scratch-escape recognizes arenas.
func isSnapshotType(module string, t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	if !strings.HasPrefix(path, module+"/") && path != module {
		return false
	}
	return strings.Contains(named.Obj().Name(), "napshot") // snapshot / Snapshot
}

// acquireCall reports whether the call is a snapshot acquire: a module
// function or method named acquire/Acquire whose single result is a
// snapshot type.
func acquireCall(module string, info *types.Info, call *ast.CallExpr) bool {
	fn := CalleeOf(info, call)
	if fn == nil || (fn.Name() != "acquire" && fn.Name() != "Acquire") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isSnapshotType(module, sig.Results().At(0).Type())
}

// releaseTarget returns the printed expression of the snapshot a
// release/Release call gives back: its first snapshot-typed argument, or
// its receiver when the method hangs off the snapshot itself.
func releaseTarget(module string, info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "release" && name != "Release" {
		return "", false
	}
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && isSnapshotType(module, t) {
			return exprString(arg), true
		}
	}
	if isSel {
		if t := info.TypeOf(sel.X); t != nil && isSnapshotType(module, t) {
			return exprString(sel.X), true
		}
	}
	return "", false
}

type heldSnap struct {
	name  string // printed binding, e.g. "snap"
	pos   token.Pos
	defrd bool
}

type snapWalker struct {
	prog   *Program
	pkg    *Package
	r      *Reporter
	fnName string
	held   []heldSnap
}

func (w *snapWalker) snapshot() []heldSnap {
	s := make([]heldSnap, len(w.held))
	copy(s, w.held)
	return s
}

func (w *snapWalker) restore(s []heldSnap) { w.held = s }

func (w *snapWalker) live() []heldSnap {
	var out []heldSnap
	for _, h := range w.held {
		if !h.defrd {
			out = append(out, h)
		}
	}
	return out
}

func (w *snapWalker) release(name string, deferred bool) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].name == name {
			if deferred {
				w.held[i].defrd = true
			} else {
				w.held = append(w.held[:i], w.held[i+1:]...)
			}
			return
		}
	}
}

func (w *snapWalker) drop(name string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].name == name {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *snapWalker) walkBlock(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		w.walkStmt(stmt)
	}
}

func (w *snapWalker) walkStmt(stmt ast.Stmt) {
	info := w.pkg.Info
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			switch {
			case len(s.Rhs) == len(s.Lhs):
				rhs = s.Rhs[i]
			case len(s.Rhs) == 1:
				rhs = s.Rhs[0]
			}
			call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
			if !isCall || !acquireCall(w.prog.Module, info, call) {
				continue
			}
			id, isID := ast.Unparen(lhs).(*ast.Ident)
			if !isID || id.Name == "_" {
				w.r.Report(call.Pos(), "snapshot-lifecycle",
					fmt.Sprintf("%s: acquired snapshot is discarded; its refcount never drops and the epoch never reclaims", w.fnName))
				continue
			}
			w.held = append(w.held, heldSnap{name: id.Name, pos: call.Pos()})
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if acquireCall(w.prog.Module, info, call) {
				w.r.Report(call.Pos(), "snapshot-lifecycle",
					fmt.Sprintf("%s: acquired snapshot is discarded; its refcount never drops and the epoch never reclaims", w.fnName))
				return
			}
			if name, ok := releaseTarget(w.prog.Module, info, call); ok {
				w.release(name, false)
			}
		}
	case *ast.DeferStmt:
		if name, ok := releaseTarget(w.prog.Module, info, s.Call); ok {
			w.release(name, true)
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, ok := releaseTarget(w.prog.Module, info, call); ok {
						w.release(name, true)
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		// Returning the snapshot transfers ownership to the caller.
		for _, res := range s.Results {
			w.drop(exprString(ast.Unparen(res)))
		}
		for _, h := range w.live() {
			w.r.Report(s.Pos(), "snapshot-lifecycle",
				fmt.Sprintf("%s: return with snapshot %s still acquired; release it on every path or use defer", w.fnName, h.name))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
		if s.Else != nil {
			snap = w.snapshot()
			w.walkStmt(s.Else)
			w.restore(snap)
		}
	case *ast.BlockStmt:
		w.walkBlock(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.RangeStmt:
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	}
}

// scanSnapshotEscapes applies scratch-escape's reference rules to
// snapshot types across a whole file, independent of the balance walk.
func scanSnapshotEscapes(prog *Program, pkg *Package, f *ast.File, r *Reporter) {
	info := pkg.Info

	snapExpr := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		return t != nil && isSnapshotType(prog.Module, t)
	}

	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if v, ok := obj.(*types.Var); ok && isSnapshotType(prog.Module, v.Type()) {
					r.Report(name.Pos(), "snapshot-lifecycle",
						fmt.Sprintf("package-level %s holds snapshot type %s; a snapshot pinned forever blocks epoch reclamation", name.Name, v.Type()))
				}
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if snapExpr(n.Value) {
				r.Report(n.Pos(), "snapshot-lifecycle",
					"snapshot sent on a channel escapes its acquire scope; the receiver outlives the release")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if snapExpr(arg) {
					r.Report(arg.Pos(), "snapshot-lifecycle",
						"snapshot passed to a go statement escapes its acquire scope")
				}
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				reportSnapshotCaptures(prog, pkg, lit, r)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				}
				if rhs == nil || !snapExpr(rhs) {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if v, ok := info.Uses[target].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						r.Report(n.Pos(), "snapshot-lifecycle",
							fmt.Sprintf("snapshot stored in package-level %s escapes its acquire scope", target.Name))
					}
				case *ast.SelectorExpr:
					// A shrinking reslice of the same field introduces no
					// new reference; anything else parks a snapshot in a
					// long-lived struct past its release.
					if slice, ok := ast.Unparen(rhs).(*ast.SliceExpr); ok &&
						exprString(ast.Unparen(slice.X)) == exprString(target) {
						continue
					}
					if !snapExpr(target.X) {
						r.Report(n.Pos(), "snapshot-lifecycle",
							fmt.Sprintf("snapshot stored in field %s of non-snapshot %s outlives its acquire scope",
								target.Sel.Name, info.TypeOf(target.X)))
					}
				}
			}
		}
		return true
	})
}

// reportSnapshotCaptures flags snapshot-typed free variables referenced by
// a go-statement closure.
func reportSnapshotCaptures(prog *Program, pkg *Package, lit *ast.FuncLit, r *Reporter) {
	info := pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the closure
		}
		if isSnapshotType(prog.Module, v.Type()) {
			r.Report(id.Pos(), "snapshot-lifecycle",
				fmt.Sprintf("go-statement closure captures snapshot %s, which escapes its acquire scope", id.Name))
		}
		return true
	})
}
