package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkGoroutineLifecycle requires every go statement in the module's
// non-test code to have a teardown story. A spawn is compliant when:
//
//   - its body (or the body of a statically resolvable module callee)
//     selects on a ctx.Done channel, so cancellation reaches it;
//   - the enclosing function joins it — a sync.WaitGroup Wait call, or a
//     receive from a channel the goroutine sends on or closes;
//   - the spawn line carries //nnc:detached <reason>, declaring the
//     goroutine deliberately unjoined (a process-lifetime listener, a
//     fire-and-forget warmup) with the why on record.
//
// Anything else is a goroutine nothing can stop: it outlives deadlines,
// leaks under test churn, and turns shutdown into a race. Test files are
// exempt (they are parse-only and t.Cleanup patterns differ).
func checkGoroutineLifecycle(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if goStmtCompliant(prog, pkg, fd, g) {
						return true
					}
					if r.SiteAllowed(g.Pos(), "detached") {
						return true
					}
					r.Report(g.Pos(), "goroutine-lifecycle",
						"goroutine has no teardown path: select on ctx.Done in its body, join it with a WaitGroup or channel, or annotate the spawn //nnc:detached <reason>")
					return true
				})
			}
		}
	}
}

func goStmtCompliant(prog *Program, pkg *Package, enclosing *ast.FuncDecl, g *ast.GoStmt) bool {
	info := pkg.Info

	// The spawned body: a func literal inline, or a module function we can
	// resolve statically.
	var body *ast.BlockStmt
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := CalleeOf(info, g.Call); fn != nil && fn.Pkg() != nil &&
		strings.HasPrefix(fn.Pkg().Path(), prog.Module) {
		if target := prog.ByPath[fn.Pkg().Path()]; target != nil {
			body = declBodyOf(target, fn)
		}
	}
	if body != nil && referencesCtxDone(info, body) {
		return true
	}
	if waitsOnWaitGroup(info, enclosing.Body) {
		return true
	}
	if body != nil && channelJoined(enclosing.Body, body) {
		return true
	}
	return false
}

// declBodyOf finds the declaration body of fn inside pkg.
func declBodyOf(pkg *Package, fn *types.Func) *ast.BlockStmt {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && obj == fn {
				return fd.Body
			}
		}
	}
	return nil
}

// referencesCtxDone reports whether the body calls Done() on a
// context.Context anywhere (including nested closures — a handler wired
// into the goroutine's machinery counts).
func referencesCtxDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if t := info.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
		}
		return true
	})
	return found
}

// waitsOnWaitGroup reports whether the enclosing body contains a
// sync.WaitGroup Wait call — the classic fan-out join.
func waitsOnWaitGroup(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok {
			return true
		}
		fn, ok := selection.Obj().(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return true
	})
	return found
}

// channelJoined reports whether a channel the goroutine sends on (or
// closes) is also received from in the enclosing function — the
// completion-signal join (errCh <- run(); ...; <-errCh). Channels are
// matched by printed expression, which is exact for the local-variable
// shape this idiom takes.
func channelJoined(enclosing, spawned *ast.BlockStmt) bool {
	sent := map[string]bool{}
	ast.Inspect(spawned, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			sent[exprString(ast.Unparen(s.Chan))] = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "close" && len(s.Args) == 1 {
				sent[exprString(ast.Unparen(s.Args[0]))] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	joined := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch s := n.(type) {
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" && sent[exprString(ast.Unparen(s.X))] {
				joined = true
			}
		case *ast.RangeStmt:
			if sent[exprString(ast.Unparen(s.X))] {
				joined = true
			}
		}
		return true
	})
	return joined
}
