package lint

import (
	"testing"
	"time"
)

// TestLoadCacheTypeChecksOnce is the acceptance gate for the shared
// load/type-check cache: one full lint run — however many LoadModule and
// LoadDirs calls it makes — type-checks each module package at most once.
// Eleven checks over a re-type-checked module would put `make lint` and
// the golden tests well past a minute; the cache keeps the whole suite to
// a single source-importer pass.
func TestLoadCacheTypeChecksOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check through the source importer is slow; run without -short")
	}
	l, err := sharedLoader("../..")
	if err != nil {
		t.Fatalf("shared loader: %v", err)
	}
	prog, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	n := l.TypeChecks()
	if n == 0 {
		t.Fatal("first LoadModule type-checked nothing; the counter is broken")
	}

	// The cached path: a repeat load plus the full check suite must not
	// touch the type-checker again, and must finish fast — the wall-time
	// gate is an order of magnitude above anything observed for the
	// AST-only work that remains.
	start := time.Now()
	if _, err := LoadModule("../.."); err != nil {
		t.Fatalf("repeat load module: %v", err)
	}
	Run(prog)
	if got := l.TypeChecks(); got != n {
		t.Errorf("repeat load + check suite re-type-checked the module: %d -> %d passes", n, got)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cached reload + full check suite took %v; the once-per-run cache should keep this far under 30s", elapsed)
	}
}
