package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncInfo describes one function or method declaration in the module.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func // nil only if the declaration failed to resolve

	Hotpath  bool   // declared //nnc:hotpath
	Coldpath bool   // declared //nnc:coldpath <reason>
	ColdWhy  string // the coldpath reason (empty = malformed)
}

// Name returns a readable receiver-qualified name for diagnostics.
func (fi *FuncInfo) Name() string {
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 {
		t := fi.Decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if idx, ok := t.(*ast.IndexListExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fi.Decl.Name.Name
		}
	}
	return fi.Decl.Name.Name
}

// FuncIndex maps declared function objects to their declarations, with the
// //nnc:hotpath and //nnc:coldpath directives already parsed.
type FuncIndex struct {
	ByObj map[*types.Func]*FuncInfo
	All   []*FuncInfo
}

// directiveOn scans the doc comment (and any comment group ending on the
// line above the declaration) for a //nnc: directive with the given prefix,
// returning the remainder text and whether it was present.
func directiveOn(decl *ast.FuncDecl, directive string) (rest string, ok bool) {
	if decl.Doc == nil {
		return "", false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive {
			return "", true
		}
		if r, found := strings.CutPrefix(text, directive+" "); found {
			return strings.TrimSpace(r), true
		}
	}
	return "", false
}

// NewFuncIndex indexes every function declaration in the program's
// type-checked packages.
func NewFuncIndex(prog *Program) *FuncIndex {
	idx := &FuncIndex{ByObj: map[*types.Func]*FuncInfo{}}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fi := &FuncInfo{Pkg: pkg, Decl: fd}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					fi.Obj = obj
					idx.ByObj[obj] = fi
				}
				_, fi.Hotpath = directiveOn(fd, hotpathDirective)
				fi.ColdWhy, fi.Coldpath = directiveOn(fd, coldpathDirective)
				idx.All = append(idx.All, fi)
			}
		}
	}
	return idx
}

// CalleeOf statically resolves the callee of a call expression to its
// declared *types.Func, if the target is a concrete function or method in
// the module (not an interface method, function value, or builtin). Generic
// instantiations resolve to their origin declaration.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// Interface dispatch cannot be resolved statically; callers
			// that care (hotpath-alloc) treat it as a walk boundary.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn.Origin()
		}
		// Package-qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.IndexExpr: // generic instantiation F[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn.Origin()
			}
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn.Origin()
			}
		}
	}
	return nil
}

// calleePathQual returns the import path and name of a called function for
// denylist matching (e.g. "fmt", "Sprintf"), or "" if unresolvable. Works
// for any call target with a types.Func object, including stdlib.
func calleePathQual(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else {
			fn, _ = info.Uses[fun.Sel].(*types.Func)
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ = info.Uses[id].(*types.Func)
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ = info.Uses[id].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}
