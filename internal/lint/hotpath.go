package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkHotpathAlloc walks the static call graph from every //nnc:hotpath
// root and flags allocating constructs in each reached module function:
// make/new, escaping or slice/map composite literals, map writes,
// non-reuse append, non-constant string concatenation, escaping capturing
// closures, interface boxing, and calls into fmt/reflect/regexp or
// sort.Slice*. //nnc:coldpath functions are walk boundaries — they
// amortize their own allocations (their declared reason says how) and
// their bodies are not scanned. Interface dispatch is also a boundary:
// dynamic callees cannot be resolved statically, so implementations of
// hot interfaces (geom.Metric, core.Backend) must carry their own
// //nnc:hotpath roots to be covered.
func checkHotpathAlloc(prog *Program, r *Reporter) {
	idx := NewFuncIndex(prog)

	// Malformed coldpath directives are findings regardless of
	// reachability: a boundary without a reason is indistinguishable from
	// a silenced regression.
	for _, fi := range idx.All {
		if fi.Coldpath && fi.ColdWhy == "" {
			r.Report(fi.Decl.Pos(), "hotpath-alloc",
				"//nnc:coldpath requires a reason: \"//nnc:coldpath <why this function may allocate>\"")
		}
	}

	// BFS from the hotpath roots through statically resolvable calls into
	// module internal/ packages.
	type workItem struct {
		fi   *FuncInfo
		root string
	}
	var queue []workItem
	seen := map[*FuncInfo]bool{}
	for _, fi := range idx.All {
		if fi.Hotpath {
			queue = append(queue, workItem{fi, fi.Name()})
			seen[fi] = true
		}
	}
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		callees := scanHotFunc(prog, item.fi, item.root, r)
		for _, callee := range callees {
			cfi := idx.ByObj[callee]
			if cfi == nil || seen[cfi] || cfi.Coldpath {
				continue
			}
			if !strings.Contains(cfi.Pkg.ImportPath, "/internal/") {
				continue
			}
			seen[cfi] = true
			queue = append(queue, workItem{cfi, item.root})
		}
	}
}

// allocDenylist maps called-package paths to a short reason; any call into
// these packages from a hot function is flagged.
var allocDenylist = map[string]string{
	"fmt":     "formats through reflection and allocates",
	"reflect": "reflection is never allocation-free",
	"regexp":  "regexp matching allocates",
}

// hotScanner scans one function body for allocating constructs.
type hotScanner struct {
	prog    *Program
	pkg     *Package
	fi      *FuncInfo
	root    string
	r       *Reporter
	callees []*types.Func

	// funcLits the body walk decided do not escape their statement:
	// immediately invoked, deferred, go'd, or passed directly as a call
	// argument (the callee runs them within the call).
	exemptLits map[*ast.FuncLit]bool
	// sigs is the result-signature stack for return-statement boxing.
	sigs []*types.Signature
}

// scanHotFunc reports allocating constructs in fi's body and returns the
// statically resolved module callees for the BFS.
func scanHotFunc(prog *Program, fi *FuncInfo, root string, r *Reporter) []*types.Func {
	if fi.Decl.Body == nil {
		return nil
	}
	s := &hotScanner{
		prog:       prog,
		pkg:        fi.Pkg,
		fi:         fi,
		root:       root,
		r:          r,
		exemptLits: map[*ast.FuncLit]bool{},
	}
	s.markExemptLits(fi.Decl.Body)
	sig, _ := fi.Pkg.Info.Defs[fi.Decl.Name].Type().(*types.Signature)
	if sig != nil {
		s.sigs = append(s.sigs, sig)
	}
	s.walk(fi.Decl.Body, false)
	return s.callees
}

func (s *hotScanner) report(pos token.Pos, msg string) {
	where := s.fi.Name()
	if where == s.root {
		s.r.Report(pos, "hotpath-alloc", fmt.Sprintf("%s (in //nnc:hotpath %s)", msg, where))
		return
	}
	s.r.Report(pos, "hotpath-alloc",
		fmt.Sprintf("%s (in %s, reached from //nnc:hotpath %s)", msg, where, s.root))
}

// markExemptLits pre-computes which function literals never outlive their
// statement (immediately invoked, deferred, go'd, or passed directly as a
// call argument) or are bound to a local variable that is only ever
// called — the compiler keeps those on the stack, so they don't allocate.
func (s *hotScanner) markExemptLits(body ast.Node) {
	info := s.pkg.Info
	// First pass: every ident that appears as the operator of a call.
	calledIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				calledIdents[id] = true
			}
		}
		return true
	})
	// onlyCalled reports whether every use of v in the body is a direct
	// call — then the closure value bound to v never escapes.
	onlyCalled := func(v *types.Var) bool {
		ok := true
		ast.Inspect(body, func(n ast.Node) bool {
			if !ok {
				return false
			}
			if id, okID := n.(*ast.Ident); okID && info.Uses[id] == v && !calledIdents[id] {
				ok = false
			}
			return true
		})
		return ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				s.exemptLits[lit] = true // immediately invoked
			}
			for _, arg := range n.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					s.exemptLits[lit] = true // runs within the call
				}
			}
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				s.exemptLits[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				s.exemptLits[lit] = true
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lit, okLit := ast.Unparen(n.Rhs[0]).(*ast.FuncLit)
			id, okID := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !okLit || !okID {
				return true
			}
			var v *types.Var
			if n.Tok == token.DEFINE {
				v, _ = info.Defs[id].(*types.Var)
			} else {
				v, _ = info.Uses[id].(*types.Var)
			}
			if v != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() && onlyCalled(v) {
				s.exemptLits[lit] = true // f := func(...){...} used only as f(...)
			}
		}
		return true
	})
}

// walk recursively scans n; inPanic marks subtrees that only execute while
// building a panic value, which are exempt from allocation rules.
func (s *hotScanner) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	info := s.pkg.Info
	switch n := n.(type) {
	case *ast.CallExpr:
		s.scanCall(n, inPanic)
		return
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				if !inPanic {
					s.report(n.Pos(), "address-taken composite literal escapes to the heap")
				}
				for _, elt := range lit.Elts {
					s.walk(elt, inPanic)
				}
				return
			}
		}
	case *ast.CompositeLit:
		if !inPanic {
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					s.report(n.Pos(), "slice literal allocates")
				case *types.Map:
					s.report(n.Pos(), "map literal allocates")
				}
			}
		}
	case *ast.FuncLit:
		if !inPanic && !s.exemptLits[n] && s.captures(n) {
			s.report(n.Pos(), "capturing closure outlives its statement and allocates")
		}
		sig, _ := info.Types[n].Type.(*types.Signature)
		if sig != nil {
			s.sigs = append(s.sigs, sig)
			s.walk(n.Body, inPanic)
			s.sigs = s.sigs[:len(s.sigs)-1]
			return
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && !inPanic {
			if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				s.report(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		s.scanAssign(n, inPanic)
		return
	case *ast.IncDecStmt:
		if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) && !inPanic {
			s.report(n.Pos(), "map update allocates on growth; hot state must live in arenas or dense slices")
		}
	case *ast.ValueSpec:
		for i, v := range n.Values {
			if i < len(n.Names) {
				s.checkBoxing(v, info.TypeOf(n.Names[i]), inPanic)
			}
			s.walk(v, inPanic)
		}
		return
	case *ast.ReturnStmt:
		if len(s.sigs) > 0 {
			sig := s.sigs[len(s.sigs)-1]
			if sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					s.checkBoxing(res, sig.Results().At(i).Type(), inPanic)
				}
			}
		}
	case *ast.SendStmt:
		if ch, ok := info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
			s.checkBoxing(n.Value, ch.Elem(), inPanic)
		}
	}

	for _, child := range childNodes(n) {
		s.walk(child, inPanic)
	}
}

// scanCall handles builtin allocators, the append-reuse idiom's non-idiom
// uses, the package denylist, boxing at the call boundary, and callee
// collection for the BFS.
func (s *hotScanner) scanCall(call *ast.CallExpr, inPanic bool) {
	info := s.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				for _, arg := range call.Args {
					s.walk(arg, true)
				}
				return
			case "make":
				if !inPanic {
					s.report(call.Pos(), "make allocates; use a slab arena or per-search scratch")
				}
			case "new":
				if !inPanic {
					s.report(call.Pos(), "new allocates; use a slab arena or per-search scratch")
				}
			case "append":
				// Bare append outside the x = append(x, ...) assignment
				// idiom: the result is discarded into a fresh backing
				// array. scanAssign whitelists the idiom before we get
				// here, so any append reaching this point is suspect.
				if !inPanic {
					s.report(call.Pos(), "append outside the x = append(x, ...) reuse idiom may reallocate")
				}
			}
		}
	}

	if path, name := calleePathQual(info, call); path != "" {
		if why, bad := allocDenylist[path]; bad && !inPanic {
			s.report(call.Pos(), fmt.Sprintf("call to %s.%s: %s", path, name, why))
		}
		if path == "sort" && strings.HasPrefix(name, "Slice") && !inPanic {
			s.report(call.Pos(), fmt.Sprintf("sort.%s uses reflection and boxes the swap closure; use a typed sort", name))
		}
	}

	// Boxing at the call boundary: concrete non-pointer-shaped values
	// passed where the callee takes an interface.
	if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok && call.Ellipsis == token.NoPos {
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				if sl, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			if pt != nil {
				s.checkBoxing(arg, pt, inPanic)
			}
		}
	}

	if callee := CalleeOf(info, call); callee != nil {
		s.callees = append(s.callees, callee)
	}

	s.walk(call.Fun, inPanic)
	for _, arg := range call.Args {
		s.walk(arg, inPanic)
	}
}

// scanAssign handles map writes, string +=, the append-reuse idiom, and
// boxing on interface-typed targets.
func (s *hotScanner) scanAssign(a *ast.AssignStmt, inPanic bool) {
	info := s.pkg.Info
	for _, lhs := range a.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) && !inPanic {
			s.report(lhs.Pos(), "map write allocates on growth; hot state must live in arenas or dense slices")
		}
	}
	if a.Tok == token.ADD_ASSIGN && len(a.Lhs) == 1 && !inPanic {
		if t := info.TypeOf(a.Lhs[0]); t != nil && isString(t) {
			s.report(a.Pos(), "string concatenation allocates")
		}
	}
	// x = append(x, ...) (optionally through a reslice of x, as in
	// g.adj = append(g.adj[:n], ...)) reuses capacity and is the one
	// sanctioned append form; walk only the appended values.
	if len(a.Lhs) == 1 && len(a.Rhs) == 1 && a.Tok == token.ASSIGN {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok && len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					base := ast.Unparen(call.Args[0])
					for {
						if sl, ok := base.(*ast.SliceExpr); ok {
							base = ast.Unparen(sl.X)
							continue
						}
						break
					}
					if exprString(a.Lhs[0]) == exprString(base) {
						for _, arg := range call.Args[1:] {
							s.walk(arg, inPanic)
						}
						return
					}
				}
			}
		}
	}
	for i, rhs := range a.Rhs {
		if len(a.Lhs) == len(a.Rhs) {
			s.checkBoxing(rhs, info.TypeOf(a.Lhs[i]), inPanic)
		}
		s.walk(rhs, inPanic)
	}
	for _, lhs := range a.Lhs {
		s.walk(lhs, inPanic)
	}
}

// checkBoxing flags expr when assigning it to target implies boxing a
// concrete non-pointer-shaped value into an interface.
func (s *hotScanner) checkBoxing(expr ast.Expr, target types.Type, inPanic bool) {
	if inPanic || target == nil || !types.IsInterface(target) {
		return
	}
	info := s.pkg.Info
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if at == types.Typ[types.UntypedNil] || types.IsInterface(at) {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	}
	s.report(expr.Pos(), fmt.Sprintf("value of type %s boxes into interface %s and allocates", at, target))
}

// captures reports whether lit references a variable declared outside its
// own body (a capture forces the closure onto the heap).
func (s *hotScanner) captures(lit *ast.FuncLit) bool {
	info := s.pkg.Info
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil {
			return true
		}
		// Package-level vars aren't captures; only function-scoped vars
		// declared before the literal and outside its extent count.
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
