// Package lint is nnclint: a project-specific static-analysis suite built
// entirely on the standard library (go/parser, go/ast, go/types, go/token —
// no golang.org/x/tools), enforcing the invariants the hot dominance path
// depends on:
//
//   - hotpath-alloc: functions annotated //nnc:hotpath — and everything they
//     statically call inside the module — must not contain allocating
//     constructs (make, new, escaping composite literals, map writes,
//     non-reuse append, string concatenation, escaping closures, interface
//     boxing, calls into fmt/reflect/regexp/sort.Slice);
//   - scratch-escape: values carved out of internal/slab arenas or a
//     core.CheckScratch must not outlive their search (no package-level
//     stores, channel sends, or go-statement captures);
//   - lock-balance: every Lock/RLock in the pager, diskindex, wal and
//     front packages is released on all return paths, and no page-file
//     I/O, WAL append or engine search runs while a shard lock is held;
//   - ctx-flow: exported engine/backend methods that reach storage I/O take
//     a context.Context and actually forward it;
//   - no-reflect-sort: the hot packages never regress to reflection-based
//     sort.Slice or fmt formatting;
//   - bench-hygiene: every Benchmark* function reports allocations, so
//     alloc regressions stay visible in every benchmark run;
//   - wal-order: commit paths in the wal and diskindex packages append
//     page images before the commit record and sync the log before a
//     success return; checkpoint or truncation never precedes the commit
//     sync while images are pending;
//   - snapshot-lifecycle: every epoch snapshot acquire is balanced by a
//     release on all paths (deferred or explicit), and no snapshot
//     reference escapes its acquire scope (package-level stores, channel
//     sends, go-statement captures, fields of long-lived structs);
//   - goroutine-lifecycle: every go statement selects on ctx.Done in its
//     body, is joined by a WaitGroup or channel, or carries an explained
//     //nnc:detached annotation;
//   - error-taxonomy: the storage and server packages wrap underlying
//     errors with %w (so errors.Is quarantine routing keeps working), and
//     the storage packages never mint one-off errors.New values inside
//     function bodies;
//   - atomic-publish: atomic.Pointer fields are stored only at annotated
//     //nnc:publish sites and never aliased or copied around Load/Store.
//
// Findings print as "file:line:col: [check] message" and are suppressible
// only by an explained annotation:
//
//	//nnc:allow <check>: <reason>   on the flagged line or the line above
//	//nnc:coldpath <reason>         on a function declaration: the function
//	                                amortizes its own allocations (lazy
//	                                one-time builds, slab growth); the
//	                                hot-path walk does not descend into it
//	//nnc:hotpath                   on a function declaration: the function
//	                                is a steady-state hot-path root
//	//nnc:detached <reason>         on a go statement: the goroutine is
//	                                deliberately unjoined (process-lifetime
//	                                listener, fire-and-forget warmup)
//	//nnc:publish <reason>          on an atomic.Pointer store: this line is
//	                                a sanctioned publication site
//
// A reason is mandatory everywhere; an annotation that suppresses or
// blesses nothing is itself a finding, so stale suppressions cannot
// linger, and an //nnc:allow naming a check the registry doesn't know is
// flagged rather than silently ignored.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String formats the diagnostic in the clickable file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
}

// allowKey identifies the source line an //nnc:allow directive governs.
type allowKey struct {
	file string
	line int
}

type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// siteDirective is one //nnc:publish or //nnc:detached annotation: an
// explained declaration that a specific line is a sanctioned exception (an
// atomic publication site, a deliberately detached goroutine). The
// stale-allow machinery applies unchanged — a reason is mandatory, and a
// directive that blesses nothing is itself a finding, scoped to the check
// that owns the directive kind so partial runs stay quiet.
type siteDirective struct {
	pos    token.Position
	kind   string // "publish" or "detached"
	owner  string // check that validates this directive kind
	reason string
	used   bool
}

// Reporter collects diagnostics and applies allow-directive suppression.
type Reporter struct {
	fset   *token.FileSet
	diags  []Diagnostic
	allows map[allowKey][]*allowDirective
	sites  map[allowKey][]*siteDirective
	known  map[string]bool // registered check names; validates allow targets
	ran    map[string]bool // checks that executed; scopes unused-allow findings
}

// NewReporter builds a reporter over the program's allow directives.
func NewReporter(prog *Program) *Reporter {
	r := &Reporter{
		fset:   prog.Fset,
		allows: map[allowKey][]*allowDirective{},
		sites:  map[allowKey][]*siteDirective{},
		known:  map[string]bool{},
		ran:    map[string]bool{},
	}
	// The allow grammar validates check names against the live registry,
	// so a typo'd //nnc:allow for any check — current or future — is a
	// finding instead of a silent no-op.
	for _, c := range Checks() {
		r.known[c.Name] = true
	}
	for _, pkg := range prog.Pkgs {
		r.collectAllows(pkg)
		r.collectSites(pkg)
	}
	for _, pkg := range prog.TestASTs {
		r.collectAllows(pkg)
		r.collectSites(pkg)
	}
	return r
}

const (
	allowPrefix = "//nnc:allow "
	// hotpathDirective and coldpathDirective are matched in callgraph.go;
	// named here so the directive grammar lives in one place.
	hotpathDirective  = "//nnc:hotpath"
	coldpathDirective = "//nnc:coldpath"
	// Site directives bless a single line for the check that owns them.
	detachedDirective = "//nnc:detached"
	publishDirective  = "//nnc:publish"
)

// siteDirectiveKinds maps each site-directive spelling to its kind tag and
// the check whose findings it blesses.
var siteDirectiveKinds = []struct {
	directive string
	kind      string
	owner     string
}{
	{detachedDirective, "detached", "goroutine-lifecycle"},
	{publishDirective, "publish", "atomic-publish"},
}

func (r *Reporter) collectAllows(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := r.fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				check, reason, ok := strings.Cut(rest, ":")
				d := &allowDirective{pos: pos, check: strings.TrimSpace(check)}
				if ok {
					d.reason = strings.TrimSpace(reason)
				}
				if d.check == "" || d.reason == "" {
					r.diags = append(r.diags, Diagnostic{
						Pos:   pos,
						Check: "allow",
						Msg:   "malformed //nnc:allow: want \"//nnc:allow <check>: <reason>\" with a non-empty reason",
					})
					continue
				}
				if !r.known[d.check] {
					r.diags = append(r.diags, Diagnostic{
						Pos:   pos,
						Check: "allow",
						Msg:   fmt.Sprintf("//nnc:allow names unknown check %q; it would suppress nothing (see nnclint -list)", d.check),
					})
					continue
				}
				key := allowKey{file: pos.Filename, line: pos.Line}
				r.allows[key] = append(r.allows[key], d)
			}
		}
	}
}

// collectSites indexes //nnc:publish and //nnc:detached annotations by the
// line they sit on, mirroring collectAllows. Validation (mandatory reason,
// must bless something) is deferred to Finish so it only fires when the
// owning check ran.
func (r *Reporter) collectSites(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				for _, sk := range siteDirectiveKinds {
					rest, ok := strings.CutPrefix(text, sk.directive)
					if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
						continue
					}
					pos := r.fset.Position(c.Pos())
					d := &siteDirective{pos: pos, kind: sk.kind, owner: sk.owner, reason: strings.TrimSpace(rest)}
					key := allowKey{file: pos.Filename, line: pos.Line}
					r.sites[key] = append(r.sites[key], d)
				}
			}
		}
	}
}

// SiteAllowed reports whether a site directive of the given kind blesses
// pos (same line or the line immediately above), marking it used. A
// directive with a missing reason still blesses the site — the malformed
// directive itself becomes the finding in Finish, so each mistake surfaces
// exactly once.
func (r *Reporter) SiteAllowed(pos token.Pos, kind string) bool {
	p := r.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range r.sites[allowKey{file: p.Filename, line: line}] {
			if d.kind == kind {
				d.used = true
				return true
			}
		}
	}
	return false
}

// Report files a finding at pos unless an //nnc:allow for the same check
// sits on that line or the line immediately above.
func (r *Reporter) Report(pos token.Pos, check, msg string) {
	p := r.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range r.allows[allowKey{file: p.Filename, line: line}] {
			if d.check == check {
				d.used = true
				return
			}
		}
	}
	r.diags = append(r.diags, Diagnostic{Pos: p, Check: check, Msg: msg})
}

// Finish appends findings for allow directives that suppressed nothing
// (scoped to the checks that actually ran, so partial runs don't flag
// other checks' suppressions) and returns the sorted diagnostics.
func (r *Reporter) Finish() []Diagnostic {
	for _, ds := range r.allows {
		for _, d := range ds {
			if !d.used && r.ran[d.check] {
				r.diags = append(r.diags, Diagnostic{
					Pos:   d.pos,
					Check: "allow",
					Msg:   fmt.Sprintf("unused //nnc:allow %s: nothing on this or the next line triggers that check; delete the stale suppression", d.check),
				})
			}
		}
	}
	for _, ds := range r.sites {
		for _, d := range ds {
			if !r.ran[d.owner] {
				continue
			}
			switch {
			case d.reason == "":
				r.diags = append(r.diags, Diagnostic{
					Pos:   d.pos,
					Check: d.owner,
					Msg:   fmt.Sprintf("malformed //nnc:%s: want \"//nnc:%s <reason>\" with a non-empty reason", d.kind, d.kind),
				})
			case !d.used:
				r.diags = append(r.diags, Diagnostic{
					Pos:   d.pos,
					Check: d.owner,
					Msg:   fmt.Sprintf("unused //nnc:%s: nothing on this or the next line needs blessing; delete the stale annotation", d.kind),
				})
			}
		}
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return r.diags
}

// Check is one pluggable analysis.
type Check struct {
	Name string
	Run  func(prog *Program, r *Reporter)
}

// Checks returns the full suite in a stable order.
func Checks() []Check {
	return []Check{
		{Name: "hotpath-alloc", Run: checkHotpathAlloc},
		{Name: "scratch-escape", Run: checkScratchEscape},
		{Name: "lock-balance", Run: checkLockBalance},
		{Name: "ctx-flow", Run: checkCtxFlow},
		{Name: "no-reflect-sort", Run: checkNoReflectSort},
		{Name: "bench-hygiene", Run: checkBenchHygiene},
		{Name: "wal-order", Run: checkWALOrder},
		{Name: "snapshot-lifecycle", Run: checkSnapshotLifecycle},
		{Name: "goroutine-lifecycle", Run: checkGoroutineLifecycle},
		{Name: "error-taxonomy", Run: checkErrorTaxonomy},
		{Name: "atomic-publish", Run: checkAtomicPublish},
	}
}

// Run executes every check over the program and returns the sorted,
// suppression-filtered findings.
func Run(prog *Program) []Diagnostic {
	r := NewReporter(prog)
	for _, c := range Checks() {
		r.MarkRan(c.Name)
		c.Run(prog, r)
	}
	return r.Finish()
}

// MarkRan records that a check executed, enabling unused-allow detection
// for its suppressions.
func (r *Reporter) MarkRan(check string) { r.ran[check] = true }
