// Package lint is nnclint: a project-specific static-analysis suite built
// entirely on the standard library (go/parser, go/ast, go/types, go/token —
// no golang.org/x/tools), enforcing the invariants the hot dominance path
// depends on:
//
//   - hotpath-alloc: functions annotated //nnc:hotpath — and everything they
//     statically call inside the module — must not contain allocating
//     constructs (make, new, escaping composite literals, map writes,
//     non-reuse append, string concatenation, escaping closures, interface
//     boxing, calls into fmt/reflect/regexp/sort.Slice);
//   - scratch-escape: values carved out of internal/slab arenas or a
//     core.CheckScratch must not outlive their search (no package-level
//     stores, channel sends, or go-statement captures);
//   - lock-balance: every Lock/RLock in the pager, diskindex, wal and
//     front packages is released on all return paths, and no page-file
//     I/O, WAL append or engine search runs while a shard lock is held;
//   - ctx-flow: exported engine/backend methods that reach storage I/O take
//     a context.Context and actually forward it;
//   - no-reflect-sort: the hot packages never regress to reflection-based
//     sort.Slice or fmt formatting;
//   - bench-hygiene: every Benchmark* function reports allocations, so
//     alloc regressions stay visible in every benchmark run.
//
// Findings print as "file:line:col: [check] message" and are suppressible
// only by an explained annotation:
//
//	//nnc:allow <check>: <reason>   on the flagged line or the line above
//	//nnc:coldpath <reason>         on a function declaration: the function
//	                                amortizes its own allocations (lazy
//	                                one-time builds, slab growth); the
//	                                hot-path walk does not descend into it
//	//nnc:hotpath                   on a function declaration: the function
//	                                is a steady-state hot-path root
//
// A reason is mandatory; an allow that suppresses nothing is itself a
// finding, so stale suppressions cannot linger.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String formats the diagnostic in the clickable file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Msg)
}

// allowKey identifies the source line an //nnc:allow directive governs.
type allowKey struct {
	file string
	line int
}

type allowDirective struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

// Reporter collects diagnostics and applies allow-directive suppression.
type Reporter struct {
	fset   *token.FileSet
	diags  []Diagnostic
	allows map[allowKey][]*allowDirective
	ran    map[string]bool // checks that executed; scopes unused-allow findings
}

// NewReporter builds a reporter over the program's allow directives.
func NewReporter(prog *Program) *Reporter {
	r := &Reporter{fset: prog.Fset, allows: map[allowKey][]*allowDirective{}, ran: map[string]bool{}}
	for _, pkg := range prog.Pkgs {
		r.collectAllows(pkg)
	}
	for _, pkg := range prog.TestASTs {
		r.collectAllows(pkg)
	}
	return r
}

const (
	allowPrefix = "//nnc:allow "
	// hotpathDirective and coldpathDirective are matched in callgraph.go;
	// named here so the directive grammar lives in one place.
	hotpathDirective  = "//nnc:hotpath"
	coldpathDirective = "//nnc:coldpath"
)

func (r *Reporter) collectAllows(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := r.fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				check, reason, ok := strings.Cut(rest, ":")
				d := &allowDirective{pos: pos, check: strings.TrimSpace(check)}
				if ok {
					d.reason = strings.TrimSpace(reason)
				}
				if d.check == "" || d.reason == "" {
					r.diags = append(r.diags, Diagnostic{
						Pos:   pos,
						Check: "allow",
						Msg:   "malformed //nnc:allow: want \"//nnc:allow <check>: <reason>\" with a non-empty reason",
					})
					continue
				}
				key := allowKey{file: pos.Filename, line: pos.Line}
				r.allows[key] = append(r.allows[key], d)
			}
		}
	}
}

// Report files a finding at pos unless an //nnc:allow for the same check
// sits on that line or the line immediately above.
func (r *Reporter) Report(pos token.Pos, check, msg string) {
	p := r.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range r.allows[allowKey{file: p.Filename, line: line}] {
			if d.check == check {
				d.used = true
				return
			}
		}
	}
	r.diags = append(r.diags, Diagnostic{Pos: p, Check: check, Msg: msg})
}

// Finish appends findings for allow directives that suppressed nothing
// (scoped to the checks that actually ran, so partial runs don't flag
// other checks' suppressions) and returns the sorted diagnostics.
func (r *Reporter) Finish() []Diagnostic {
	for _, ds := range r.allows {
		for _, d := range ds {
			if !d.used && r.ran[d.check] {
				r.diags = append(r.diags, Diagnostic{
					Pos:   d.pos,
					Check: "allow",
					Msg:   fmt.Sprintf("unused //nnc:allow %s: nothing on this or the next line triggers that check; delete the stale suppression", d.check),
				})
			}
		}
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return r.diags
}

// Check is one pluggable analysis.
type Check struct {
	Name string
	Run  func(prog *Program, r *Reporter)
}

// Checks returns the full suite in a stable order.
func Checks() []Check {
	return []Check{
		{Name: "hotpath-alloc", Run: checkHotpathAlloc},
		{Name: "scratch-escape", Run: checkScratchEscape},
		{Name: "lock-balance", Run: checkLockBalance},
		{Name: "ctx-flow", Run: checkCtxFlow},
		{Name: "no-reflect-sort", Run: checkNoReflectSort},
		{Name: "bench-hygiene", Run: checkBenchHygiene},
	}
}

// Run executes every check over the program and returns the sorted,
// suppression-filtered findings.
func Run(prog *Program) []Diagnostic {
	r := NewReporter(prog)
	for _, c := range Checks() {
		r.MarkRan(c.Name)
		c.Run(prog, r)
	}
	return r.Finish()
}

// MarkRan records that a check executed, enabling unused-allow detection
// for its suppressions.
func (r *Reporter) MarkRan(check string) { r.ran[check] = true }
