// Package atomcase is the seeded-violation corpus for the atomic-publish
// check: atomic.Pointer fields may be Loaded freely, Stored/Swapped only
// at //nnc:publish-annotated sites, and never aliased or copied around
// the protocol.
package atomcase

import "sync/atomic"

type state struct {
	n int
}

type holder struct {
	cur atomic.Pointer[state]
}

// ReadPath: Load is what readers do.
func (h *holder) ReadPath() int {
	if s := h.cur.Load(); s != nil {
		return s.n
	}
	return 0
}

// PublishAnnotated is a sanctioned publication site.
func (h *holder) PublishAnnotated(s *state) {
	h.cur.Store(s) //nnc:publish corpus demo: swap-on-rebuild publication point
}

// PublishCASAnnotated: CompareAndSwap is a publication event too.
func (h *holder) PublishCASAnnotated(s *state) bool {
	//nnc:publish corpus demo: first-wins attach
	return h.cur.CompareAndSwap(nil, s)
}

// UnannotatedStore publishes without review.
func (h *holder) UnannotatedStore(s *state) {
	h.cur.Store(s) //wantlint atomic-publish: unannotated Store
}

// UnannotatedSwap: Swap publishes and reads in one step; still a
// publication site.
func (h *holder) UnannotatedSwap(s *state) *state {
	return h.cur.Swap(s) //wantlint atomic-publish: unannotated Swap
}

// AliasedField copies the pointer cell, bypassing the protocol.
func (h *holder) AliasedField() *atomic.Pointer[state] {
	return &h.cur //wantlint atomic-publish: aliasing the cell
}

// StalePublish blesses a line that publishes nothing.
func (h *holder) StalePublish() int {
	n := h.ReadPath() //nnc:publish nothing on this line stores
	_ = n             // wantlint-file atomic-publish: unused //nnc:publish
	return n
}

// MalformedPublish blesses its store but records no reason: the missing
// review is the finding.
func (h *holder) MalformedPublish(s *state) {
	h.cur.Store(s) //nnc:publish
	_ = s          // wantlint-file atomic-publish: malformed //nnc:publish
}
