// Package lockcase is the seeded-violation corpus for the lock-balance
// check. The file type's ReadPage/WritePage methods stand in for the
// pager's storage primitives (the check keys on the method name plus the
// defining package's path, which contains "lockbalance").
package lockcase

import "sync"

type file struct{}

func (file) ReadPage(id int, p []byte) error  { return nil }
func (file) WritePage(id int, p []byte) error { return nil }

type store struct {
	mu sync.RWMutex
	f  file
}

func (s *store) Balanced() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 0
}

func (s *store) EarlyReturnClean(ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *store) LeakyReturn(ok bool) {
	s.mu.Lock()
	if !ok {
		return //wantlint lock-balance: still locked
	}
	s.mu.Unlock()
}

func (s *store) IOUnderLock(p []byte) error {
	s.mu.Lock()
	err := s.f.ReadPage(1, p) //wantlint lock-balance: while s.mu is held
	s.mu.Unlock()
	return err
}

func (s *store) IOAfterUnlock(p []byte) error {
	s.mu.Lock()
	id := 1
	s.mu.Unlock()
	return s.f.ReadPage(id, p) // lock released before the transfer: clean
}

func (s *store) DeferredClosure() {
	s.mu.RLock()
	defer func() { s.mu.RUnlock() }()
}

func (s *store) BranchLocal(ok bool) {
	if ok {
		s.mu.RLock()
		s.mu.RUnlock()
	}
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *store) FallsOffEnd() {
	s.mu.Lock()
} //wantlint lock-balance: function end reached

// The WAL writer methods stand in for internal/wal's Log appends: each
// one fsyncs, so holding a lock across them serializes every commit.
func (file) AppendPageImage(tx uint64, id int, p []byte) error { return nil }
func (file) AppendCommit(tx uint64) error                      { return nil }
func (file) AppendCheckpoint(tx uint64) error                  { return nil }

func (s *store) WALImageUnderLock(p []byte) error {
	s.mu.Lock()
	err := s.f.AppendPageImage(1, 2, p) //wantlint lock-balance: while s.mu is held
	s.mu.Unlock()
	return err
}

func (s *store) WALCommitUnderRLock() error {
	s.mu.RLock()
	err := s.f.AppendCommit(1) //wantlint lock-balance: while s.mu is held
	s.mu.RUnlock()
	return err
}

func (s *store) WALCheckpointAfterUnlock() error {
	s.mu.Lock()
	tx := uint64(7)
	s.mu.Unlock()
	return s.f.AppendCheckpoint(tx) // lock released before the fsync: clean
}

// The engine stand-in mirrors the front door's hazard: SearchKCtx may
// walk the disk index, so a cache/coalescer shard lock held across it
// serializes every request hashing to that shard behind a page read.
type engine struct{}

func (engine) SearchKCtx(q, op, k, opts int) (int, error) { return 0, nil }

type cacheShard struct {
	mu      sync.Mutex
	eng     engine
	entries map[string]int
}

func (c *cacheShard) SearchUnderShardLock(q int) (int, error) {
	c.mu.Lock()
	res, err := c.eng.SearchKCtx(q, 0, 1, 0) //wantlint lock-balance: while c.mu is held
	c.mu.Unlock()
	return res, err
}

func (c *cacheShard) LookupThenSearch(key string, q int) (int, error) {
	c.mu.Lock()
	if v, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	res, err := c.eng.SearchKCtx(q, 0, 1, 0) // miss path searches outside the lock: clean
	c.mu.Lock()
	c.entries[key] = res
	c.mu.Unlock()
	return res, err
}

func (c *cacheShard) LeakOnMiss(key string) (int, bool) {
	c.mu.Lock()
	v, ok := c.entries[key]
	if !ok {
		return 0, false //wantlint lock-balance: still locked
	}
	c.mu.Unlock()
	return v, true
}

// --- shard-RPC-under-lock cases (lockIOMethods: ShardQuery/ProbeHealth) ------

type shardReplica struct{}

func (shardReplica) ShardQuery(body []byte) error { return nil }
func (shardReplica) ProbeHealth() error           { return nil }

type routerShard struct {
	mu  sync.Mutex
	rep shardReplica
}

// RPCUnderLock holds the shard mutex across a full network round trip:
// every concurrent fan-out serializes behind one slow replica.
func (r *routerShard) RPCUnderLock(body []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rep.ShardQuery(body) //wantlint lock-balance: performs storage I/O while
}

// ProbeUnderLock is the same violation through the health probe.
func (r *routerShard) ProbeUnderLock() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rep.ProbeHealth() //wantlint lock-balance: performs storage I/O while
}

// RPCOutsideLock snapshots under the lock and calls outside it: clean.
func (r *routerShard) RPCOutsideLock(body []byte) error {
	r.mu.Lock()
	rep := r.rep
	r.mu.Unlock()
	return rep.ShardQuery(body)
}
