// Package clusterfanout is the seeded-violation corpus for the
// goroutine-lifecycle check over the scatter-gather shapes: per-shard
// fan-out goroutines, hedged duplicate requests, and breaker probe loops.
// Every spawn needs a ctx.Done select, a WaitGroup/channel join, or an
// explained //nnc:detached annotation.
package clusterfanout

import (
	"context"
	"sync"
)

type answer struct {
	idx int
	err error
}

func callShard(i int) error { return nil }

// FanOut is the compliant scatter: every shard goroutine is joined by the
// WaitGroup before the merge reads the slots.
func FanOut(n int) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = callShard(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// Hedge is the compliant hedged-request shape: the attempt goroutine
// either delivers its answer or observes the attempt ctx die — the send
// can never block forever, and cancellation reaches the loser.
func Hedge(actx context.Context, primary, hedged int) answer {
	ch := make(chan answer)
	launch := func(i int) {
		go func() {
			select {
			case ch <- answer{idx: i, err: callShard(i)}:
			case <-actx.Done():
			}
		}()
	}
	launch(primary)
	launch(hedged)
	select {
	case a := <-ch:
		return a
	case <-actx.Done():
		return answer{err: actx.Err()}
	}
}

// FireAndForgetRetry resends on a goroutine nothing can stop: no join, no
// ctx, the spawn outlives every deadline.
func FireAndForgetRetry(i int) {
	go func() { //wantlint goroutine-lifecycle: no teardown path
		callShard(i)
	}()
}

func probeLoop() {
	for {
		callShard(0)
	}
}

// StartProbing launches an unbounded probe loop with no teardown: a
// breaker revival loop must select on ctx.Done or be declared detached.
func StartProbing() {
	go probeLoop() //wantlint goroutine-lifecycle: no teardown path
}
