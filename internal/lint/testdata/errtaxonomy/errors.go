// Package errcase is the seeded-violation corpus for the error-taxonomy
// check: storage-path errors must stay routable through errors.Is, so
// fmt.Errorf carries error values through %w and one-off errors.New
// inside function bodies is banned in favor of package-level sentinels.
// Regression notes: the %w-colon-%v shape is exactly what the pager and
// mutable index used before PR 9 fixed them to double-%w wrapping.
package errcase

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the sentinel shape the check wants: package-level, so
// callers can errors.Is against it.
var ErrCorrupt = errors.New("errcase: corrupt page")

func readPage(ok bool) error {
	if ok {
		return nil
	}
	return ErrCorrupt
}

// WrapClean carries the underlying error through %w.
func WrapClean(id int) error {
	if err := readPage(false); err != nil {
		return fmt.Errorf("errcase: page %d: %w", id, err)
	}
	return nil
}

// DoubleWrapClean: Go 1.20+ multi-%w keeps both causes routable.
func DoubleWrapClean(id int) error {
	if err := readPage(false); err != nil {
		return fmt.Errorf("%w: page %d: %w", ErrCorrupt, id, err)
	}
	return nil
}

// FlattenedWrap formats the error with %v, stripping its identity.
func FlattenedWrap(id int) error {
	if err := readPage(false); err != nil {
		return fmt.Errorf("errcase: page %d: %v", id, err) //wantlint error-taxonomy: wrap it with %w
	}
	return nil
}

// HalfWrapped wraps the sentinel but flattens the cause — the shape the
// real storage packages were fixed out of.
func HalfWrapped() error {
	if err := readPage(false); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err) //wantlint error-taxonomy: wrap it with %w
	}
	return nil
}

// InlineSentinel mints a fresh error value per call: nothing can
// errors.Is against it.
func InlineSentinel(ok bool) error {
	if !ok {
		return errors.New("errcase: bad magic") //wantlint error-taxonomy: package-level sentinel
	}
	return nil
}

// AllowedInline carries a reviewed suppression.
func AllowedInline(ok bool) error {
	if !ok {
		//nnc:allow error-taxonomy: corpus demo of a reviewed one-off error
		return errors.New("errcase: reviewed one-off")
	}
	return nil
}

// NoErrorArgs: fmt.Errorf without error arguments owes no %w.
func NoErrorArgs(id int, name string) error {
	return fmt.Errorf("errcase: page %d (%s): unreadable", id, name)
}

// EscapedPercent: %%w is a literal, not a verb, and the error arg is
// still unwrapped.
func EscapedPercent() error {
	if err := readPage(false); err != nil {
		return fmt.Errorf("errcase: 100%%wrong: %s", err) //wantlint error-taxonomy: wrap it with %w
	}
	return nil
}
