// Package ctxcase is the seeded-violation corpus for the ctx-flow check.
// disk.ReadPage stands in for the pager's blocking storage primitive (the
// check keys on the method name plus the defining package's path, which
// contains "ctxflow").
package ctxcase

import (
	"context"
	"net/http"
)

type disk struct{}

func (disk) ReadPage(id int, p []byte) error { return nil }

type Store struct {
	d disk
}

// read performs the raw page transfer; unexported, so it may stay ctx-free.
func (s *Store) read(id int, p []byte) error { return s.d.ReadPage(id, p) }

func (s *Store) Lookup(id int, p []byte) error { //wantlint ctx-flow: takes no context.Context
	return s.read(id, p)
}

func (s *Store) LookupCtx(ctx context.Context, id int, p []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.read(id, p)
}

func (s *Store) DeadCtx(ctx context.Context, id int, p []byte) error { //wantlint ctx-flow: never uses it
	return s.read(id, p)
}

func (s *Store) Severed(ctx context.Context, id int, p []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.LookupCtx(context.Background(), id, p) //wantlint ctx-flow: severs the cancellation chain
}

func (s *Store) Compat(ctx context.Context, id int, p []byte) error {
	if ctx == nil {
		ctx = context.Background() // documented nil-ctx compat default: clean
	}
	return s.LookupCtx(ctx, id, p)
}

// ServeHTTP rides the request's context: exempt.
func (s *Store) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	_ = s.read(0, nil)
}

type session struct{ s *Store }

// Resolve is exported-named but hangs off an unexported receiver type, so
// it is package-internal API: clean.
func (c *session) Resolve(id int, p []byte) error { return c.s.read(id, p) }
