package ctxcase

// Corpus for rule 4: retry loops must sleep through a timer + ctx select,
// never a bare time.Sleep, so cancellation interrupts the backoff itself.

import (
	"context"
	"time"
)

// retryWithBareSleep is the seeded violation: the classic exponential
// backoff written with time.Sleep, which pins the goroutine for the full
// delay even after the caller gives up.
func retryWithBareSleep(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond << i) //wantlint ctx-flow: time.Sleep in a retry loop
	}
	return nil
}

// pollUntilClosed sleeps inside a range loop — same defect, different loop
// form.
func pollUntilClosed(ch <-chan struct{}) {
	for range ch {
		time.Sleep(time.Millisecond) //wantlint ctx-flow: time.Sleep in a retry loop
	}
}

// settleOnce: a single sleep outside any loop is not a retry loop and
// stays legal (e.g. a one-shot torn-write settle delay in a test fixture).
func settleOnce() {
	time.Sleep(time.Millisecond)
}

// launchDelayedProbe: the sleep runs in a goroutine launched from the
// loop, not in the loop body's own control flow — a different (legal)
// shape, since the loop itself never blocks.
func launchDelayedProbe(n int, probe func()) {
	for i := 0; i < n; i++ {
		go func() {
			time.Sleep(time.Millisecond)
			probe()
		}()
	}
}

// sleepCtx is the idiom the rule demands: a timer whose wait loses a
// select race against cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryWithCtxSleep is the clean counterpart of retryWithBareSleep.
func retryWithCtxSleep(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		if err := sleepCtx(ctx, time.Millisecond); err != nil {
			return err
		}
	}
	return nil
}
