// Package benchcase is the seeded-violation corpus for the bench-hygiene
// check: test files are parsed without type-checking, so everything here
// is matched syntactically.
package benchcase

import "testing"

func BenchmarkDirect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkSub(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = i
		}
	})
}

func BenchmarkHelper(b *testing.B) {
	run(b)
}

func run(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkChained(b *testing.B) {
	outer(b)
}

func outer(b *testing.B) {
	run(b)
}

func BenchmarkSilent(b *testing.B) { //wantlint bench-hygiene: never calls b.ReportAllocs
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkSilentHelper(b *testing.B) { //wantlint bench-hygiene: never calls b.ReportAllocs
	silent(b)
}

func silent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

func BenchmarkRunParallelPinned(b *testing.B) {
	b.ReportAllocs()
	b.SetParallelism(2)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
		}
	})
}

func BenchmarkRunParallelUnpinned(b *testing.B) { //wantlint bench-hygiene: uses b.RunParallel without b.SetParallelism
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
		}
	})
}

func BenchmarkRunParallelHelper(b *testing.B) { //wantlint bench-hygiene: uses b.RunParallel without b.SetParallelism
	b.ReportAllocs()
	drive(b)
}

func drive(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
		}
	})
}

func TestPlaceholder(t *testing.T) {} // non-benchmark: ignored by the check
