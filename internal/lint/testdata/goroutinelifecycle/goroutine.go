// Package gorocase is the seeded-violation corpus for the
// goroutine-lifecycle check: every go statement needs a ctx.Done select,
// a WaitGroup/channel join, or an explained //nnc:detached annotation.
package gorocase

import (
	"context"
	"sync"
)

func work() {}

// NakedSpawn has no teardown path at all.
func NakedSpawn() {
	go work() //wantlint goroutine-lifecycle: no teardown path
}

// NakedClosure is the same with an inline body.
func NakedClosure() {
	go func() { //wantlint goroutine-lifecycle: no teardown path
		work()
	}()
}

// CtxDoneBody is compliant: cancellation reaches the goroutine.
func CtxDoneBody(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// WaitGroupJoin is the fan-out shape: the enclosing function waits.
func WaitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// ChannelJoin signals completion on a channel the spawner receives from.
func ChannelJoin() error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- nil
	}()
	return <-errCh
}

// CloseJoin: closing the channel is the completion signal too.
func CloseJoin() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// DetachedExplained is a sanctioned process-lifetime spawn.
func DetachedExplained() {
	go work() //nnc:detached corpus demo: process-lifetime stand-in listener
}

// DetachedNoReason: the annotation blesses the spawn but is itself a
// finding — a detachment without a recorded why is not reviewed.
func DetachedNoReason() {
	go work() //nnc:detached
	_ = 0     // wantlint-file goroutine-lifecycle: malformed //nnc:detached
}

// StaleDetached sits on a line that spawns nothing.
func StaleDetached() {
	work() //nnc:detached nothing here spawns
	_ = 0  // wantlint-file goroutine-lifecycle: unused //nnc:detached
}

// ResolvedCalleeDone: the spawned function is resolvable in-module and
// selects on ctx.Done itself.
func pump(ctx context.Context, in chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			_ = v
		}
	}
}

func ResolvedCalleeDone(ctx context.Context, in chan int) {
	go pump(ctx, in)
}
