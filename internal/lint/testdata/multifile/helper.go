package multicase

// crossFileAlloc is reached from the //nnc:hotpath root in root.go: the
// walk crosses file boundaries within the package.
func crossFileAlloc(b *buf, n int) {
	b.xs = make([]int, n) //wantlint hotpath-alloc: make allocates
}

// crossFileSuppressed carries the suppression in this file while the root
// that reaches it lives in root.go.
func crossFileSuppressed(b *buf, n int) {
	//nnc:allow hotpath-alloc: corpus demo — suppression and root live in different files
	b.xs = make([]int, n)
}
