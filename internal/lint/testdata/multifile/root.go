// Package multicase exercises lint over a multi-file, build-tagged
// package: the hot-path root lives here, the violation and its
// suppression live in helper.go, and excluded.go is fenced off by a build
// constraint the loader must honor (its seeded violation must never
// surface). It also seeds a typo'd //nnc:allow, which the registry-driven
// validation flags instead of silently ignoring.
package multicase

type buf struct {
	xs []int
}

//nnc:hotpath
func Root(b *buf, n int) int {
	crossFileAlloc(b, n)
	crossFileSuppressed(b, n)
	return len(b.xs)
}

// TypoAllow shows an allow naming a check the registry doesn't know.
func TypoAllow(b *buf) int {
	//nnc:allow hotpath-aloc: typo'd check name never suppresses anything
	return len(b.xs) // wantlint-file allow: unknown check "hotpath-aloc"
}
