//go:build neverbuilt

// excluded.go is fenced off by an unsatisfiable build constraint. The
// loader honors constraints via build.Default.MatchFile, so the seeded
// violation below must never produce a finding — if it does, the golden
// test reports it as unexpected.
package multicase

//nnc:hotpath
func ExcludedRoot(b *buf, n int) []int {
	return make([]int, n) // would be a hotpath-alloc finding if loaded
}
