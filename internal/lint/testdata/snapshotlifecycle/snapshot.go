// Package snapcase is the seeded-violation corpus for the
// snapshot-lifecycle check. The index type's acquire/release pair stands
// in for the refcounted epoch snapshots of the mutable disk index (the
// check keys on the acquire/release names plus the snapshot result type).
// Regression notes: the early-return leak mirrors the shape SearchKCtx
// would take if its defer were refactored away; the field store mirrors
// the writer's retirement parking, which carries a reviewed allow in real
// code.
package snapcase

type snapshot struct {
	refs int
}

type index struct {
	cur *snapshot
}

type registry struct {
	last *snapshot
}

func (ix *index) acquire() *snapshot  { return ix.cur }
func (ix *index) release(s *snapshot) {}

// Balanced is the canonical reader shape.
func (ix *index) Balanced() int {
	snap := ix.acquire()
	defer ix.release(snap)
	return snap.refs
}

// ExplicitRelease releases on both paths without defer.
func (ix *index) ExplicitRelease(ok bool) int {
	snap := ix.acquire()
	if !ok {
		ix.release(snap)
		return 0
	}
	n := snap.refs
	ix.release(snap)
	return n
}

// EarlyReturnLeak forgets the release on the error path.
func (ix *index) EarlyReturnLeak(ok bool) int {
	snap := ix.acquire()
	if !ok {
		return 0 //wantlint snapshot-lifecycle: still acquired
	}
	ix.release(snap)
	return 1
}

// FallOffEndLeak never releases at all.
func (ix *index) FallOffEndLeak() {
	snap := ix.acquire()
	_ = snap.refs //wantlint-file snapshot-lifecycle: function end reached with snapshot snap
}

// DroppedAcquire discards the result: the refcount never drops.
func (ix *index) DroppedAcquire() {
	ix.acquire() //wantlint snapshot-lifecycle: discarded
}

// OwnershipTransfer hands the snapshot to the caller, which is legal —
// the caller inherits the release obligation.
func (ix *index) OwnershipTransfer() *snapshot {
	snap := ix.acquire()
	return snap
}

// FieldStore parks a snapshot in a long-lived struct past its release.
func (ix *index) FieldStore(reg *registry) {
	snap := ix.acquire()
	defer ix.release(snap)
	reg.last = snap //wantlint snapshot-lifecycle: stored in field last
}

// ChannelSend lets the receiver outlive the release.
func (ix *index) ChannelSend(ch chan *snapshot) {
	snap := ix.acquire()
	defer ix.release(snap)
	ch <- snap //wantlint snapshot-lifecycle: sent on a channel
}

// GoCapture leaks the snapshot into a goroutine that may run after the
// release.
func (ix *index) GoCapture(done func()) {
	snap := ix.acquire()
	defer ix.release(snap)
	go func() {
		_ = snap.refs //wantlint snapshot-lifecycle: closure captures snapshot snap
		done()
	}()
}

// GoArg passes the snapshot to a goroutine by argument.
func (ix *index) GoArg(use func(*snapshot)) {
	snap := ix.acquire()
	defer ix.release(snap)
	go use(snap) //wantlint snapshot-lifecycle: passed to a go statement
}

// retiredParking mirrors the writer-side retirement list: appending to a
// snapshot-typed field is an escape, and the sanctioned real-code site
// carries a reviewed allow exactly like this one.
type retiredParking struct {
	retired []*snapshot
}

func (p *retiredParking) Park(ix *index) {
	snap := ix.acquire()
	defer ix.release(snap)
	//nnc:allow snapshot-lifecycle: corpus demo of the reviewed writer-side retirement parking
	p.retired = append(p.retired, snap)
}

// Shrink reslices the same field: no new reference escapes.
func (p *retiredParking) Shrink() {
	p.retired = p.retired[1:]
}

// UnparkedStore is the same shape without the review.
func (p *retiredParking) UnparkedStore(ix *index) {
	snap := ix.acquire()
	defer ix.release(snap)
	p.retired = append(p.retired, snap) //wantlint snapshot-lifecycle: stored in field retired
}

// pinned is a package-level snapshot: pinned forever, epoch never
// reclaims.
var pinned *snapshot //wantlint snapshot-lifecycle: package-level pinned
