// Package walcase is the seeded-violation corpus for the wal-order check.
// The log type's Append* methods stand in for the WAL's commit protocol
// (the check keys on the method names plus the defining package's path,
// which contains "walorder"). Regression notes: the image-after-commit and
// commit-without-sync shapes mirror near-misses caught while writing the
// mutable index's commitTx and the WAL's AppendCommit tail.
package walcase

import "errors"

const (
	RecPageImage  = 1
	RecCommit     = 2
	RecCheckpoint = 3
)

var errBoom = errors.New("walcase: boom")

type file struct{}

func (file) Sync() error            { return nil }
func (file) Truncate(n int64) error { return nil }

type log struct {
	f file
}

func (l *log) appendRecord(rec int, tx uint64) error     { return nil }
func (l *log) AppendPageImage(tx uint64, p []byte) error { return nil }
func (l *log) AppendCommit(tx uint64) error              { return nil }
func (l *log) AppendCheckpoint(tx uint64) error          { return nil }
func (l *log) Reset() error                              { return nil }

// CommitClean is the canonical protocol shape: images, then the commit
// record (which syncs internally), early error returns exempt.
func (l *log) CommitClean(tx uint64, pages [][]byte) error {
	for _, p := range pages {
		if err := l.AppendPageImage(tx, p); err != nil {
			return err
		}
	}
	if err := l.AppendCommit(tx); err != nil {
		return err
	}
	return nil
}

// ImageAfterCommit appends a page image after the transaction's commit
// record: the image belongs to no committed transaction.
func (l *log) ImageAfterCommit(tx uint64, p []byte) error {
	if err := l.AppendCommit(tx); err != nil {
		return err
	}
	if err := l.AppendPageImage(tx, p); err != nil { //wantlint wal-order: page image appended after
		return err
	}
	return nil
}

// CheckpointBeforeCommit truncates the pending transaction's images out
// of the log before their commit record exists.
func (l *log) CheckpointBeforeCommit(tx uint64, p []byte) error {
	if err := l.AppendPageImage(tx, p); err != nil {
		return err
	}
	if err := l.AppendCheckpoint(tx); err != nil { //wantlint wal-order: checkpoint record appended while page images await
		return err
	}
	return l.AppendCommit(tx)
}

// ResetWithPendingImages discards a staged transaction.
func (l *log) ResetWithPendingImages(tx uint64, p []byte) error {
	if err := l.AppendPageImage(tx, p); err != nil {
		return err
	}
	if err := l.Reset(); err != nil { //wantlint wal-order: log truncated while page images await
		return err
	}
	return l.AppendCommit(tx)
}

// ImagesNeverCommitted stages images and then reports success without a
// commit record: the transaction is never durable.
func (l *log) ImagesNeverCommitted(tx uint64, p []byte) error {
	if err := l.AppendPageImage(tx, p); err != nil {
		return err
	}
	return nil //wantlint wal-order: no commit record on this success path
}

// CommitRecordSynced is the wal-internal shape: raw commit record, then
// the fsync on the success tail.
func (l *log) CommitRecordSynced(tx uint64) error {
	if err := l.appendRecord(RecCommit, tx); err != nil {
		return err
	}
	return l.f.Sync()
}

// CommitRecordNoSync reports success with the commit record still in the
// OS page cache.
func (l *log) CommitRecordNoSync(tx uint64) error {
	if err := l.appendRecord(RecCommit, tx); err != nil {
		return err
	}
	return nil //wantlint wal-order: log is not synced on this success path
}

// CheckpointRecordNoSync: the checkpoint record carries the same fsync
// obligation as a commit.
func (l *log) CheckpointRecordNoSync(tx uint64) error {
	if err := l.appendRecord(RecCheckpoint, tx); err != nil {
		return err
	}
	return nil //wantlint wal-order: log is not synced on this success path
}

// ExplicitSyncStatement discharges the obligation before the return.
func (l *log) ExplicitSyncStatement(tx uint64) error {
	if err := l.appendRecord(RecCommit, tx); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	return nil
}

// AbortPathExempt: an error return never promised durability, so pending
// state on it is not a finding.
func (l *log) AbortPathExempt(tx uint64, p []byte, bad bool) error {
	if err := l.AppendPageImage(tx, p); err != nil {
		return err
	}
	if bad {
		return errBoom
	}
	return l.AppendCommit(tx)
}

// PageImageRecordOnly: non-commit record types carry no sync obligation.
func (l *log) PageImageRecordOnly(tx uint64) error {
	if err := l.appendRecord(RecPageImage, tx); err != nil {
		return err
	}
	return nil
}
