// Package scratchcase is the seeded-violation corpus for the
// scratch-escape check. searchScratch stands in for core.CheckScratch:
// the "Scratch" in its name is what marks it as a per-search arena.
package scratchcase

import "sync"

type searchScratch struct {
	buf []int
	sub *searchScratch
}

var leaked searchScratch //wantlint scratch-escape: package-level leaked holds scratch type

var keeper *searchScratch //wantlint scratch-escape: package-level keeper holds scratch type

// pool is the sanctioned ownership hand-off: the pool itself is not a
// scratch type, and Put/Get transfer the arena between searches. Clean.
var pool = sync.Pool{New: func() any { return new(searchScratch) }}

func use(s *searchScratch) { s.buf = s.buf[:0] }

type owner struct {
	sc *searchScratch
}

func Escapes(ch chan *searchScratch, o *owner) {
	s := pool.Get().(*searchScratch) // local binding: clean
	ch <- s                          //wantlint scratch-escape: sent on a channel
	go use(s)                        //wantlint scratch-escape: passed to a go statement
	o.sc = s                         //wantlint scratch-escape: stored in field sc of non-scratch
	keeper = s                       //wantlint scratch-escape: stored in package-level keeper
	go func() {
		use(s) //wantlint scratch-escape: captures scratch s
	}()
	t := &searchScratch{}
	s.sub = t // scratch composing scratch: clean
	pool.Put(s)
}
