// Package sortcase is the seeded-violation corpus for the no-reflect-sort
// check (the directory path contains "reflectsort", which marks the
// package hot).
package sortcase

import (
	"fmt"
	"reflect"
	"sort"
)

func Kernel(xs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) //wantlint no-reflect-sort: sorts through reflection
}

func Stable(xs []float64) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) //wantlint no-reflect-sort: sorts through reflection
}

func Typed(xs []float64) {
	sort.Float64s(xs) // typed sort: clean
}

func Message(n int) string {
	return fmt.Sprintf("n=%d", n) //wantlint no-reflect-sort: fmt.Sprintf in hot package
}

func Failure(n int) error {
	return fmt.Errorf("sortcase: bad n=%d", n) // error construction: clean
}

func Deep(a, b []int) bool {
	return reflect.DeepEqual(a, b) //wantlint no-reflect-sort: reflect.DeepEqual in hot package
}

type V struct{ n int }

// String is a display method; fmt stays legal here.
func (v V) String() string { return fmt.Sprintf("V(%d)", v.n) }
