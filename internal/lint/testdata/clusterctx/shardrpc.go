// Package clusterctx is the seeded-violation corpus for the ctx-flow
// check's HTTP-RPC classification: a shard RPC (http.Client.Do, the
// package-level convenience functions, a custom RoundTrip) is I/O exactly
// like a page read, so exported entry points that issue one must take and
// forward a context.Context.
package clusterctx

import (
	"context"
	"net/http"
)

type Replica struct {
	url string
	hc  *http.Client
}

// call performs the raw round trip; unexported, so it may stay ctx-free.
func (r *Replica) call(req *http.Request) (*http.Response, error) {
	return r.hc.Do(req)
}

// Query issues a shard RPC with no context: a dead replica pins the
// caller until the transport default times out, long past any deadline.
func (r *Replica) Query(body []byte) error { //wantlint ctx-flow: takes no context.Context
	req, err := http.NewRequest(http.MethodPost, r.url, nil)
	if err != nil {
		return err
	}
	resp, err := r.call(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// QueryCtx is the compliant shape: the request rides the caller's ctx.
func (r *Replica) QueryCtx(ctx context.Context, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.url, nil)
	if err != nil {
		return err
	}
	resp, err := r.call(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Probe hits the package-level convenience entry point (resolved through
// Uses, not Selections) with no ctx to forward.
func Probe(url string) error { //wantlint ctx-flow: takes no context.Context
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// ProbeSevered has a ctx but builds the request on a fresh one: the
// cancellation chain is cut exactly where it matters.
func (r *Replica) ProbeSevered(ctx context.Context, url string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil) //wantlint ctx-flow: severs the cancellation chain
	if err != nil {
		return err
	}
	resp, err := r.call(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Discover reaches the RPC only transitively, through the unexported
// helper — reachability must still flag it.
func (r *Replica) Discover(url string) error { //wantlint ctx-flow: takes no context.Context
	return Probe(url)
}
