// Package hotpathcase is the seeded-violation corpus for the
// hotpath-alloc check. Lines carry //wantlint annotations naming the
// finding the golden test expects there; lines without one must stay
// clean.
package hotpathcase

import (
	"fmt"
	"sort"
)

type thing struct {
	xs []int
}

//nnc:hotpath
func Root(t *thing, n int) int {
	s := make([]int, n) //wantlint hotpath-alloc: make allocates
	_ = s
	p := new(thing) //wantlint hotpath-alloc: new allocates
	_ = p
	t.xs = append(t.xs, n)   // reuse idiom: clean
	grown := append(t.xs, n) //wantlint hotpath-alloc: append outside the x = append(x, ...) reuse idiom
	_ = grown
	helper(t)
	coldBuild(t, n)
	return len(t.xs)
}

// helper is reached from the //nnc:hotpath root, so its body is scanned
// too.
func helper(t *thing) *thing {
	return &thing{xs: t.xs} //wantlint hotpath-alloc: address-taken composite literal
}

//nnc:coldpath builds the table once per corpus; the walk must not descend
func coldBuild(t *thing, n int) {
	t.xs = make([]int, n) // unscanned: coldpath boundary
}

//nnc:hotpath
func Maps(m map[int]int, k int) int {
	fresh := map[int]int{} //wantlint hotpath-alloc: map literal allocates
	_ = fresh
	m[k] = 1 //wantlint hotpath-alloc: map write allocates on growth
	return m[k]
}

//nnc:hotpath
func Concat(a, b string) string {
	if a == "" {
		panic("hotpathcase: empty a" + b) // panic path: exempt
	}
	return a + b //wantlint hotpath-alloc: string concatenation allocates
}

//nnc:hotpath
func Escaping(xs []int) func() int {
	f := func() int { return len(xs) } //wantlint hotpath-alloc: capturing closure outlives its statement
	return f
}

//nnc:hotpath
func OnlyCalled(xs []int) int {
	f := func() int { return len(xs) } // stack closure: only ever called
	return f() + f()
}

func sink(v interface{}) bool { return v != nil }

//nnc:hotpath
func Boxing(x int, t thing) bool {
	a := sink(x)  //wantlint hotpath-alloc: boxes into interface
	b := sink(t)  //wantlint hotpath-alloc: boxes into interface
	c := sink(&t) // pointers ride in the interface word: clean
	return a && b && c
}

// Denylist passes vs (already interface-typed, so no boxing on the call)
// to keep the sort.Slice line down to exactly one finding.
//
//nnc:hotpath
func Denylist(vs interface{}, xs []int) string {
	sort.Slice(vs, func(i, j int) bool { return xs[i] < xs[j] }) //wantlint hotpath-alloc: sort.Slice uses reflection
	return fmt.Sprintf("done")                                   //wantlint hotpath-alloc: call to fmt.Sprintf
}

//nnc:hotpath
func Allowed(n int) []int {
	//nnc:allow hotpath-alloc: seeded suppression exercising the allow grammar end to end
	return make([]int, n) // suppressed: clean
}

//nnc:hotpath
func Stale() int {
	//nnc:allow hotpath-alloc: nothing on the next line allocates, so this must be reported stale //wantlint allow: unused
	return 0
}

// wantlint-file allow: malformed
//
//nnc:allow hotpath-alloc:
func afterMalformed() {}

// missingReason lacks the mandatory coldpath reason.
// wantlint-file hotpath-alloc: requires a reason
//
//nnc:coldpath
func missingReason() {}
