package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File // non-test files, parse order = sorted file names
	FileNames  []string
	Types      *types.Package
	Info       *types.Info
}

// Program is a loaded module: every package type-checked, plus parse-only
// ASTs of the test files (used by AST-level checks such as bench-hygiene).
type Program struct {
	Fset     *token.FileSet
	Module   string // module path from go.mod
	RootDir  string
	Pkgs     []*Package // sorted by import path
	ByPath   map[string]*Package
	TestASTs []*Package // parse-only: _test.go files grouped by directory
}

// Loader loads and type-checks module packages with the standard library
// resolved through the source importer (importer.ForCompiler "source"), so
// the tool needs nothing beyond GOROOT sources and the module tree itself.
type Loader struct {
	fset       *token.FileSet
	module     string
	rootDir    string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	testASTs   map[string]*Package // parse-only test packages, by directory
	loading    map[string]bool
	mu         sync.Mutex // serializes loads through the shared cache
	typeChecks int        // module packages actually type-checked (cache misses)
}

// loaderCache memoizes Loaders by absolute module root, so every
// LoadModule/LoadDirs call in one process shares a single FileSet and
// type-checked package set. One full lint run — the golden corpora plus
// the repo-clean gate plus nnclint itself — type-checks each module
// package at most once; the load-cache test asserts exactly that.
var loaderCache = struct {
	sync.Mutex
	byRoot map[string]*Loader
}{byRoot: map[string]*Loader{}}

// sharedLoader returns the process-wide Loader for rootDir, creating it on
// first use. The cache key is the resolved absolute path, so "../.." and
// "." reach the same loader when they name the same module; the loader
// keeps the caller's original spelling for position rendering.
func sharedLoader(rootDir string) (*Loader, error) {
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, err
	}
	loaderCache.Lock()
	defer loaderCache.Unlock()
	if l, ok := loaderCache.byRoot[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(rootDir)
	if err != nil {
		return nil, err
	}
	loaderCache.byRoot[abs] = l
	return l, nil
}

// TypeChecks reports how many package type-check passes this loader has
// run so far. Repeat loads through the shared cache must not move it.
func (l *Loader) TypeChecks() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.typeChecks
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(rootDir string) (*Loader, error) {
	modFile := filepath.Join(rootDir, "go.mod")
	data, err := os.ReadFile(modFile)
	if err != nil {
		return nil, fmt.Errorf("lint: cannot read %s: %w", modFile, err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s", modFile)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		fset:     fset,
		module:   module,
		rootDir:  rootDir,
		std:      std,
		pkgs:     map[string]*Package{},
		testASTs: map[string]*Package{},
		loading:  map[string]bool{},
	}, nil
}

// Import resolves an import path: module-local packages load from the tree,
// everything else falls through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.rootDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.rootDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// goFilesIn lists the buildable files of dir split into non-test and test
// files, honoring build constraints for the current platform.
func (l *Loader) goFilesIn(dir string) (src, tests []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ctx := build.Default
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if match, err := ctx.MatchFile(dir, name); err != nil || !match {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			tests = append(tests, name)
		} else {
			src = append(src, name)
		}
	}
	sort.Strings(src)
	sort.Strings(tests)
	return src, tests, nil
}

// LoadDir parses and type-checks the non-test files of one directory as the
// package with the given import path, memoized.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	src, _, err := l.goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(src) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, name := range src {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, full)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := types.Config{Importer: l}
	l.typeChecks++
	tpkg, err := cfg.Check(importPath, l.fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseTestASTs parses (without type-checking) the test files of dir,
// memoized by directory like LoadDir.
func (l *Loader) parseTestASTs(dir, importPath string) (*Package, error) {
	if pkg, ok := l.testASTs[dir]; ok {
		return pkg, nil
	}
	_, tests, err := l.goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(tests) == 0 {
		l.testASTs[dir] = nil
		return nil, nil
	}
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, name := range tests {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.FileNames = append(pkg.FileNames, full)
	}
	l.testASTs[dir] = pkg
	return pkg, nil
}

// skipDirs are directory names never descended into during module walks.
var skipDirs = map[string]bool{
	"testdata": true,
	"vendor":   true,
	".git":     true,
	".github":  true,
}

// moduleDirs returns every directory under root holding buildable Go files.
func (l *Loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.rootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != l.rootDir && (skipDirs[base] || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		src, tests, err := l.goFilesIn(path)
		if err != nil {
			return err
		}
		if len(src) > 0 || len(tests) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.rootDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// LoadModule loads every package in the module (type-checked, non-test
// files) plus parse-only ASTs of all test files. Loads go through the
// process-wide loader cache: a second LoadModule for the same root reuses
// every previously type-checked package.
func LoadModule(rootDir string) (*Program, error) {
	l, err := sharedLoader(rootDir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, Module: l.module, RootDir: l.rootDir, ByPath: map[string]*Package{}}
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		src, tests, err := l.goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		if len(src) > 0 {
			pkg, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			if prog.ByPath[path] == nil {
				prog.ByPath[path] = pkg
				prog.Pkgs = append(prog.Pkgs, pkg)
			}
		}
		if len(tests) > 0 {
			tp, err := l.parseTestASTs(dir, path)
			if err != nil {
				return nil, err
			}
			if tp != nil {
				prog.TestASTs = append(prog.TestASTs, tp)
			}
		}
	}
	return prog, nil
}

// LoadDirs loads only the given directories (plus their module
// dependencies) — the entry point golden tests use to lint one corpus
// directory at a time. Import paths for directories outside the module tree
// are synthesized from the root-relative path.
func LoadDirs(rootDir string, dirs []string) (*Program, error) {
	l, err := sharedLoader(rootDir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	prog := &Program{Fset: l.fset, Module: l.module, RootDir: l.rootDir, ByPath: map[string]*Package{}}
	for _, dir := range dirs {
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(rootDir, dir)
		}
		path, err := l.importPathFor(abs)
		if err != nil {
			return nil, err
		}
		src, tests, err := l.goFilesIn(abs)
		if err != nil {
			return nil, err
		}
		if len(src) > 0 {
			pkg, err := l.LoadDir(abs, path)
			if err != nil {
				return nil, err
			}
			if prog.ByPath[path] == nil {
				prog.ByPath[path] = pkg
				prog.Pkgs = append(prog.Pkgs, pkg)
			}
		}
		if len(tests) > 0 {
			tp, err := l.parseTestASTs(abs, path)
			if err != nil {
				return nil, err
			}
			if tp != nil {
				prog.TestASTs = append(prog.TestASTs, tp)
			}
		}
	}
	return prog, nil
}
