package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkScratchEscape enforces the lifetime rule behind PR 3's arena design:
// a scratch container (an internal/slab arena, a core.CheckScratch, or any
// *Scratch/*Arena type) is owned by exactly one search and must die with
// it. Storing one in a package-level variable, sending it on a channel,
// capturing it in a go statement, or stashing it in a field of a
// non-scratch struct all let it outlive the search that owns its memory —
// the next search would then scribble over live data.
func checkScratchEscape(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			scanScratchFile(prog, pkg, f, r)
		}
	}
}

// isScratchType reports whether t (possibly behind pointers/slices) is a
// scratch container: declared in internal/slab, or a named type whose name
// contains "Scratch" or ends in "Arena".
func isScratchType(module string, t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	if !strings.HasPrefix(path, module+"/") && path != module {
		return false
	}
	if strings.HasSuffix(path, "/slab") {
		return true
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Scratch") || strings.Contains(name, "scratch") ||
		strings.HasSuffix(name, "Arena")
}

func scanScratchFile(prog *Program, pkg *Package, f *ast.File, r *Reporter) {
	info := pkg.Info

	scratchExpr := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		return t != nil && isScratchType(prog.Module, t)
	}

	// Package-level declarations of scratch values: a global arena is
	// shared by every search at once, which is exactly the bug class this
	// check exists to prevent. (A sync.Pool of scratch is fine — the pool
	// itself is not a scratch type, and Put/Get hand off ownership.)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				if v, ok := obj.(*types.Var); ok && isScratchType(prog.Module, v.Type()) {
					r.Report(name.Pos(), "scratch-escape",
						fmt.Sprintf("package-level %s holds scratch type %s; scratch must be per-search (use a sync.Pool)", name.Name, v.Type()))
				}
			}
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if scratchExpr(n.Value) {
				r.Report(n.Pos(), "scratch-escape",
					"scratch value sent on a channel escapes its owning search")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if scratchExpr(arg) {
					r.Report(arg.Pos(), "scratch-escape",
						"scratch value passed to a go statement outlives its owning search")
				}
			}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				reportScratchCaptures(prog, pkg, lit, r)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Rhs) == len(n.Lhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				}
				if rhs == nil || !scratchExpr(rhs) {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if v, ok := info.Uses[target].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						r.Report(n.Pos(), "scratch-escape",
							fmt.Sprintf("scratch value stored in package-level %s escapes its owning search", target.Name))
					}
				case *ast.SelectorExpr:
					// x.f = scratch is only sound when x is itself a
					// scratch container (scratch composing scratch);
					// stashing scratch in an ordinary long-lived struct
					// leaks it across searches.
					if !scratchExpr(target.X) {
						r.Report(n.Pos(), "scratch-escape",
							fmt.Sprintf("scratch value stored in field %s of non-scratch %s may outlive its owning search",
								target.Sel.Name, info.TypeOf(target.X)))
					}
				}
			}
		}
		return true
	})
}

// reportScratchCaptures flags free variables of scratch type referenced by
// a go-statement closure.
func reportScratchCaptures(prog *Program, pkg *Package, lit *ast.FuncLit, r *Reporter) {
	info := pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the closure
		}
		if isScratchType(prog.Module, v.Type()) {
			r.Report(id.Pos(), "scratch-escape",
				fmt.Sprintf("go-statement closure captures scratch %s, which outlives its owning search", id.Name))
		}
		return true
	})
}
