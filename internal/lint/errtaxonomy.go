package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// checkErrorTaxonomy keeps the fault taxonomy routable. The quarantine,
// retry and degradation machinery of internal/faults dispatches on
// errors.Is/errors.As, which only works when every layer that touches an
// underlying error wraps it instead of flattening it to text:
//
//  1. wrap — in the storage and server packages, fmt.Errorf must carry
//     every error-typed argument through a %w verb; formatting an error
//     with %v or %s strips its identity and breaks quarantine routing
//     downstream. (Multiple %w verbs are fine — Go 1.20+.)
//  2. sentinel — in the storage packages, errors.New inside a function
//     body mints a fresh, unroutable error value on every call; declare a
//     package-level sentinel (so callers can errors.Is against it) or
//     wrap an existing faults type with %w instead. The faults package
//     itself is exempt — it is the taxonomy.
//
// internal/lint is in both scopes: the analyzer obeys its own rules.
func checkErrorTaxonomy(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		wrapScope := errWrapScopedPkg(pkg.ImportPath)
		sentinelScope := errSentinelScopedPkg(pkg.ImportPath)
		if !wrapScope && !sentinelScope {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					path, name := calleePathQual(info, call)
					switch {
					case wrapScope && path == "fmt" && name == "Errorf":
						reportUnwrappedErrorf(info, call, r)
					case sentinelScope && path == "errors" && name == "New":
						r.Report(call.Pos(), "error-taxonomy",
							"errors.New inside a function mints an unroutable one-off error; declare a package-level sentinel or wrap a faults type with %w so errors.Is keeps working")
					}
					return true
				})
			}
		}
	}
}

// errWrapScopedPkg: everywhere an underlying error might be re-wrapped on
// its way to the quarantine router.
func errWrapScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	switch seg {
	case "wal", "pager", "diskindex", "diskstore", "diskrtree", "faultfile", "faults", "server", "front", "lint":
		return true
	}
	return strings.Contains(path, "errtaxonomy") // testdata corpora
}

// errSentinelScopedPkg: the storage data plane, where every error must be
// a sentinel or a wrapped faults type. The server packages are excluded —
// their protocol-level errors (bad request text) are display-only — and
// so is faults itself, which constructs the taxonomy.
func errSentinelScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	switch seg {
	case "wal", "pager", "diskindex", "diskstore", "diskrtree", "faultfile", "lint":
		return true
	}
	return strings.Contains(path, "errtaxonomy")
}

// reportUnwrappedErrorf flags a fmt.Errorf whose error-typed arguments
// outnumber its %w verbs. A non-literal format string is skipped — the
// verbs cannot be counted, and the repo never builds error formats
// dynamically.
func reportUnwrappedErrorf(info *types.Info, call *ast.CallExpr, r *Reporter) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	wCount := strings.Count(strings.ReplaceAll(format, "%%", ""), "%w")
	errArgs := 0
	for _, arg := range call.Args[1:] {
		t := info.TypeOf(arg)
		if t == nil {
			continue
		}
		if _, isBasic := t.Underlying().(*types.Basic); isBasic {
			continue // untyped nil and friends
		}
		if types.Implements(t, errorInterface()) {
			errArgs++
		}
	}
	if errArgs > wCount {
		r.Report(call.Pos(), "error-taxonomy",
			"fmt.Errorf formats an error value with %v/%s, hiding it from errors.Is/errors.As; wrap it with %w so quarantine routing sees through the message")
	}
}
