package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkCtxFlow enforces cancellation plumbing in the query-serving
// packages (core, diskindex, server):
//
//  1. an exported function that takes a context.Context must actually use
//     it (a dead ctx parameter advertises cancellation it doesn't honor);
//  2. an exported function that transitively reaches blocking storage I/O
//     must take a context.Context, so callers can abandon a slow disk
//     search — methods receiving an *http.Request (whose ctx rides the
//     request) and String/Error methods are exempt;
//  3. inside a function that has a ctx parameter, calling another function
//     with a fresh context.Background()/context.TODO() severs the chain
//     and is flagged (assigning a default when the caller passed nil is
//     fine — that's the documented compat path);
//  4. in the storage packages (the ctx-scoped set plus pager and faults,
//     where the backoff loops live), time.Sleep inside a loop is flagged:
//     a retry loop must sleep through a timer + ctx select (faults.Sleep)
//     so cancellation interrupts the backoff, not just the next attempt.
func checkCtxFlow(prog *Program, r *Reporter) {
	idx := NewFuncIndex(prog)

	// ioFuncs: functions that perform storage I/O directly, then the
	// transitive closure of module callers.
	reachesIO := map[*types.Func]bool{}
	callers := map[*types.Func][]*types.Func{} // callee -> callers
	for _, fi := range idx.All {
		if fi.Obj == nil || fi.Decl.Body == nil {
			continue
		}
		if directIO(fi) {
			reachesIO[fi.Obj] = true
		}
		info := fi.Pkg.Info
		obj := fi.Obj
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := CalleeOf(info, call); callee != nil {
				callers[callee] = append(callers[callee], obj)
			}
			return true
		})
	}
	queue := make([]*types.Func, 0, len(reachesIO))
	for fn := range reachesIO {
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if !reachesIO[caller] {
				reachesIO[caller] = true
				queue = append(queue, caller)
			}
		}
	}

	for _, fi := range idx.All {
		if fi.Obj == nil {
			continue
		}
		if fi.Decl.Body != nil && sleepScopedPkg(fi.Pkg.ImportPath) {
			reportSleepInLoops(fi, r)
		}
		if !ctxScopedPkg(fi.Pkg.ImportPath) {
			continue
		}
		ctxParam := ctxParamOf(fi)

		if ctxParam != nil && fi.Decl.Body != nil {
			if !identUsed(fi.Pkg.Info, fi.Decl.Body, ctxParam) {
				r.Report(fi.Decl.Pos(), "ctx-flow",
					fmt.Sprintf("%s takes a context.Context but never uses it; forward it to callees or drop the parameter", fi.Name()))
			}
			reportFreshCtxCalls(fi, r)
		}

		if ctxParam == nil && isAPIExported(fi) && reachesIO[fi.Obj] && !ctxExempt(fi) {
			r.Report(fi.Decl.Pos(), "ctx-flow",
				fmt.Sprintf("exported %s reaches storage I/O but takes no context.Context; slow disk searches cannot be cancelled", fi.Name()))
		}
	}
}

// ctxScopedPkg includes internal/lint itself: `make lint` loads the whole
// module, so the analyzer's own API is held to the ctx-flow (and
// error-taxonomy) rules it enforces on everyone else.
func ctxScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	return seg == "core" || seg == "diskindex" || seg == "server" || seg == "front" ||
		seg == "cluster" || seg == "lint" ||
		strings.Contains(path, "ctxflow") || strings.Contains(path, "clusterctx")
}

// sleepScopedPkg widens the ctx-scoped set with the storage substrate,
// whose retry/backoff loops are exactly where an uncancellable sleep would
// pin a query past its deadline.
func sleepScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	return ctxScopedPkg(path) || seg == "pager" || seg == "faults"
}

// httpClientMethods are net/http's blocking request entry points. A shard
// RPC is I/O exactly like a page read: issuing one without the caller's
// context means a dead replica pins the query past its deadline, so the
// ctx-flow reachability treats them as direct I/O. RoundTrip covers
// custom transports; the package-level Get/Post/Head convenience
// functions resolve through Uses rather than Selections.
var httpClientMethods = map[string]bool{
	"Do":        true,
	"Get":       true,
	"Post":      true,
	"PostForm":  true,
	"Head":      true,
	"RoundTrip": true,
}

// directIO reports whether the function body itself calls a storage
// primitive (pager page/file transfer or store record access) or issues
// an HTTP request (a shard RPC).
func directIO(fi *FuncInfo) bool {
	if fi.Decl.Body == nil {
		return false
	}
	info := fi.Pkg.Info
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !ioMethods[name] && !httpClientMethods[name] {
			return true
		}
		var fn *types.Func
		if selection, ok := info.Selections[sel]; ok {
			fn, _ = selection.Obj().(*types.Func)
		} else {
			// Package-qualified call (http.Get, http.Post, ...).
			fn, _ = info.Uses[sel.Sel].(*types.Func)
		}
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		switch {
		case ioMethods[name] &&
			(strings.Contains(path, "/pager") || strings.Contains(path, "/diskindex") || strings.Contains(path, "ctxflow")):
			found = true
		case httpClientMethods[name] && (path == "net/http" || strings.Contains(path, "clusterctx")):
			found = true
		}
		return true
	})
	return found
}

// ctxParamOf returns the *types.Var of the function's context.Context
// parameter, if any.
func ctxParamOf(fi *FuncInfo) *types.Var {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) && p.Name() != "_" && p.Name() != "" {
			return p
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isAPIExported reports whether the function is reachable from outside its
// package: an exported function, or an exported method on an exported
// receiver type (a method on an unexported type is internal API even when
// its own name is capitalized to satisfy an interface).
func isAPIExported(fi *FuncInfo) bool {
	if !fi.Decl.Name.IsExported() {
		return false
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return true
}

// ctxExempt: handlers get ctx from the request; String/Error are display
// methods that must match stdlib interfaces.
func ctxExempt(fi *FuncInfo) bool {
	name := fi.Decl.Name.Name
	if name == "String" || name == "Error" || name == "GoString" {
		return true
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		pt := sig.Params().At(i).Type()
		ptr, ok := pt.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request" {
			return true
		}
	}
	return false
}

func identUsed(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			used = true
		}
		return true
	})
	return used
}

// reportSleepInLoops flags time.Sleep calls lexically inside any for/range
// loop: a loop that sleeps is a retry or polling loop, and a bare sleep
// cannot be interrupted by cancellation — the ctx-aware timer+select idiom
// (faults.Sleep) is the only legal wait there.
func reportSleepInLoops(fi *FuncInfo, r *Reporter) {
	info := fi.Pkg.Info
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.ForStmt:
				if s.Init != nil {
					walk(s.Init, inLoop)
				}
				if s.Cond != nil {
					walk(s.Cond, inLoop)
				}
				if s.Post != nil {
					walk(s.Post, inLoop)
				}
				walk(s.Body, true)
				return false
			case *ast.RangeStmt:
				walk(s.Body, true)
				return false
			case *ast.FuncLit:
				// A closure resets loop context: sleeping in a goroutine
				// launched from a loop is a different (legal) shape.
				walk(s.Body, false)
				return false
			case *ast.CallExpr:
				if !inLoop {
					return true
				}
				path, name := calleePathQual(info, s)
				if path == "time" && name == "Sleep" {
					r.Report(s.Pos(), "ctx-flow",
						"time.Sleep in a retry loop cannot be cancelled; use a timer + ctx select (faults.Sleep)")
				}
				return true
			}
			return true
		})
	}
	walk(fi.Decl.Body, false)
}

// reportFreshCtxCalls flags context.Background()/TODO() passed as a call
// argument inside a function that already has a ctx to forward. The
// assignment form (ctx = context.Background() when the caller passed nil)
// stays legal.
func reportFreshCtxCalls(fi *FuncInfo, r *Reporter) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			path, name := calleePathQual(info, inner)
			if path == "context" && (name == "Background" || name == "TODO") {
				r.Report(arg.Pos(), "ctx-flow",
					fmt.Sprintf("context.%s severs the cancellation chain; forward this function's ctx instead", name))
			}
		}
		return true
	})
}
