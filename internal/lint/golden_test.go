package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusCases maps each testdata corpus directory to the single check its
// seeded violations target. Each corpus is loaded and linted in isolation
// so a regression in one check cannot hide behind another's findings.
var corpusCases = []struct {
	dir   string
	check string
}{
	{"hotpath", "hotpath-alloc"},
	{"scratchescape", "scratch-escape"},
	{"lockbalance", "lock-balance"},
	{"ctxflow", "ctx-flow"},
	{"reflectsort", "no-reflect-sort"},
	{"benchhygiene", "bench-hygiene"},
	{"walorder", "wal-order"},
	{"snapshotlifecycle", "snapshot-lifecycle"},
	{"goroutinelifecycle", "goroutine-lifecycle"},
	// The scatter-gather corpora: HTTP shard RPCs as ctx-carried I/O, and
	// fan-out/hedge/probe goroutine shapes.
	{"clusterctx", "ctx-flow"},
	{"clusterfanout", "goroutine-lifecycle"},
	{"errtaxonomy", "error-taxonomy"},
	{"atomicpublish", "atomic-publish"},
	// multifile re-runs hotpath-alloc over a package whose root,
	// violation and suppression live in different files, with a
	// build-tag-excluded file the loader must skip.
	{"multifile", "hotpath-alloc"},
}

// wantFinding is one parsed //wantlint expectation. line == 0 means the
// finding may land anywhere in the file (the wantlint-file form, for lines
// that cannot carry a trailing comment — e.g. findings raised on a
// directive comment itself).
type wantFinding struct {
	file   string // basename
	line   int
	check  string
	substr string
}

// parseWantLine recognizes the two golden grammars:
//
//	code //wantlint <check>: <substr>      finding expected on this line
//	// wantlint-file <check>: <substr>     finding expected anywhere in file
func parseWantLine(file string, line int, text string) (wantFinding, bool) {
	if _, rest, ok := strings.Cut(text, "wantlint-file "); ok {
		if check, substr, ok := cutCheck(rest); ok {
			return wantFinding{file: file, check: check, substr: substr}, true
		}
		return wantFinding{}, false
	}
	if _, rest, ok := strings.Cut(text, "//wantlint "); ok {
		if check, substr, ok := cutCheck(rest); ok {
			return wantFinding{file: file, line: line, check: check, substr: substr}, true
		}
	}
	return wantFinding{}, false
}

func cutCheck(rest string) (check, substr string, ok bool) {
	check, substr, found := strings.Cut(rest, ":")
	check = strings.TrimSpace(check)
	substr = strings.TrimSpace(substr)
	if !found || check == "" || substr == "" || strings.ContainsAny(check, " \t") {
		return "", "", false
	}
	return check, substr, true
}

func parseWants(t *testing.T, dir string) []wantFinding {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus %s: %v", dir, err)
	}
	var wants []wantFinding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			if w, ok := parseWantLine(e.Name(), i+1, lineText); ok {
				wants = append(wants, w)
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no //wantlint annotations", dir)
	}
	return wants
}

func TestGoldenCorpora(t *testing.T) {
	for _, tc := range corpusCases {
		t.Run(tc.dir, func(t *testing.T) {
			prog, err := LoadDirs("../..", []string{"internal/lint/testdata/" + tc.dir})
			if err != nil {
				t.Fatalf("load corpus: %v", err)
			}
			r := NewReporter(prog)
			for _, c := range Checks() {
				if c.Name == tc.check {
					r.MarkRan(c.Name)
					c.Run(prog, r)
				}
			}
			matchFindings(t, parseWants(t, filepath.Join("testdata", tc.dir)), r.Finish())
		})
	}
}

// matchFindings pairs expectations with diagnostics one-to-one:
// line-anchored wants claim first, wantlint-file wants sweep up the rest,
// and anything left over on either side fails the test.
func matchFindings(t *testing.T, wants []wantFinding, diags []Diagnostic) {
	t.Helper()
	claimed := make([]bool, len(diags))
	match := func(w wantFinding, exactLine bool) bool {
		for i, d := range diags {
			if claimed[i] || d.Check != w.check || filepath.Base(d.Pos.Filename) != w.file ||
				!strings.Contains(d.Msg, w.substr) {
				continue
			}
			if exactLine && d.Pos.Line != w.line {
				continue
			}
			claimed[i] = true
			return true
		}
		return false
	}
	var missing []wantFinding
	for _, w := range wants {
		if w.line != 0 && !match(w, true) {
			missing = append(missing, w)
		}
	}
	for _, w := range wants {
		if w.line == 0 && !match(w, false) {
			missing = append(missing, w)
		}
	}
	for _, w := range missing {
		t.Errorf("missing finding: %s:%d [%s] with message containing %q", w.file, w.line, w.check, w.substr)
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected finding: %s", d.String())
		}
	}
}

// TestRepoCleanUnderLint is the acceptance gate behind `make lint`: the
// whole module lints clean, so any finding in CI comes from the change
// under review, and every surviving //nnc:allow suppresses something real.
func TestRepoCleanUnderLint(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check through the source importer is slow; run without -short")
	}
	prog, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range Run(prog) {
		t.Errorf("repo not lint-clean: %s", d.String())
	}
}
