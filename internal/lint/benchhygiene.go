package lint

import (
	"fmt"
	"go/ast"
)

// checkBenchHygiene requires every Benchmark function to call
// b.ReportAllocs: the zero-allocation guarantees in this repo are only as
// good as the benchmarks that would show a regression, and a benchmark
// that hides allocs/op hides exactly the number we watch. Test files are
// parsed but not type-checked (they may live in the package under test),
// so the check is syntactic: a function named Benchmark* taking a single
// *testing.B must reach a <recv>.ReportAllocs() call — directly, in a
// b.Run sub-benchmark closure, or through a same-package helper (many
// benchmarks here delegate the timed loop to runSearches-style helpers
// that report allocs on the sub-benchmark's behalf).
func checkBenchHygiene(prog *Program, r *Reporter) {
	for _, pkg := range prog.TestASTs {
		// Same-package helpers the benchmarks may delegate to, by name.
		helpers := map[string]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
					helpers[fd.Name.Name] = fd
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv != nil {
					continue
				}
				if !isBenchmarkDecl(fd) {
					continue
				}
				if !reachesReportAllocs(fd, helpers, map[*ast.FuncDecl]bool{}) {
					r.Report(fd.Pos(), "bench-hygiene",
						fmt.Sprintf("%s never calls b.ReportAllocs(); allocation regressions would be invisible in this benchmark", fd.Name.Name))
				}
			}
		}
	}
}

// reachesReportAllocs walks fd's body and, through plain same-package
// function calls, the helpers it delegates to.
func reachesReportAllocs(fd *ast.FuncDecl, helpers map[string]*ast.FuncDecl, seen map[*ast.FuncDecl]bool) bool {
	if seen[fd] {
		return false
	}
	seen[fd] = true
	if callsReportAllocs(fd.Body) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if callee, ok := helpers[id.Name]; ok && reachesReportAllocs(callee, helpers, seen) {
				found = true
			}
		}
		return true
	})
	return found
}

// isBenchmarkDecl matches func BenchmarkXxx(b *testing.B) syntactically.
func isBenchmarkDecl(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if len(name) < len("Benchmark") || name[:len("Benchmark")] != "Benchmark" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "testing"
}

func callsReportAllocs(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "ReportAllocs" {
			found = true
		}
		return true
	})
	return found
}
