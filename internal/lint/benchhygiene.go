package lint

import (
	"fmt"
	"go/ast"
)

// checkBenchHygiene enforces two benchmark-quality rules. First, every
// Benchmark function must call b.ReportAllocs: the zero-allocation
// guarantees in this repo are only as good as the benchmarks that would
// show a regression, and a benchmark that hides allocs/op hides exactly
// the number we watch. Second, a benchmark that drives b.RunParallel
// must also call b.SetParallelism: RunParallel defaults to one goroutine
// per GOMAXPROCS, which on a small CI runner degenerates to a serial
// benchmark that reports "parallel" numbers — pinning the fan-out keeps
// the contention level the benchmark claims to measure.
//
// Test files are parsed but not type-checked (they may live in the
// package under test), so both checks are syntactic: a function named
// Benchmark* taking a single *testing.B must reach a <recv>.Method()
// call — directly, in a b.Run sub-benchmark closure, or through a
// same-package helper (many benchmarks here delegate the timed loop to
// runSearches-style helpers that report allocs on the sub-benchmark's
// behalf).
func checkBenchHygiene(prog *Program, r *Reporter) {
	for _, pkg := range prog.TestASTs {
		// Same-package helpers the benchmarks may delegate to, by name.
		helpers := map[string]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
					helpers[fd.Name.Name] = fd
				}
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv != nil {
					continue
				}
				if !isBenchmarkDecl(fd) {
					continue
				}
				if !reachesMethodCall(fd, "ReportAllocs", helpers, map[*ast.FuncDecl]bool{}) {
					r.Report(fd.Pos(), "bench-hygiene",
						fmt.Sprintf("%s never calls b.ReportAllocs(); allocation regressions would be invisible in this benchmark", fd.Name.Name))
				}
				if reachesMethodCall(fd, "RunParallel", helpers, map[*ast.FuncDecl]bool{}) &&
					!reachesMethodCall(fd, "SetParallelism", helpers, map[*ast.FuncDecl]bool{}) {
					r.Report(fd.Pos(), "bench-hygiene",
						fmt.Sprintf("%s uses b.RunParallel without b.SetParallelism; the contention level then depends on GOMAXPROCS and the numbers are not comparable across machines", fd.Name.Name))
				}
			}
		}
	}
}

// reachesMethodCall walks fd's body looking for a <recv>.method() call,
// following plain same-package function calls into the helpers they
// delegate to.
func reachesMethodCall(fd *ast.FuncDecl, method string, helpers map[string]*ast.FuncDecl, seen map[*ast.FuncDecl]bool) bool {
	if seen[fd] {
		return false
	}
	seen[fd] = true
	if callsMethod(fd.Body, method) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if callee, ok := helpers[id.Name]; ok && reachesMethodCall(callee, method, helpers, seen) {
				found = true
			}
		}
		return true
	})
	return found
}

// isBenchmarkDecl matches func BenchmarkXxx(b *testing.B) syntactically.
func isBenchmarkDecl(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if len(name) < len("Benchmark") || name[:len("Benchmark")] != "Benchmark" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "testing"
}

// callsMethod reports whether body contains any <x>.method(...) call.
func callsMethod(body *ast.BlockStmt, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == method {
			found = true
		}
		return true
	})
	return found
}
