package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkLockBalance verifies, for every function in the pager, diskindex
// and wal packages, that each mutex Lock/RLock is matched by an Unlock/RUnlock on
// every return path (deferred or explicit), and that no page-file or store
// I/O call executes while a lock is held. The analysis is a source-order
// walk with branch-local lock state: entering a nested block snapshots the
// held set and leaving restores it, so the common early-return pattern
// (lock; if err { unlock; return }; ...; unlock; return) checks cleanly
// while a branch that returns with the lock held is still caught.
func checkLockBalance(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		if !lockScopedPkg(pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lb := &lockWalker{pkg: pkg, r: r, fnName: fd.Name.Name}
				lb.walkBlock(fd.Body)
				// A function that falls off the end with a live lock is
				// only a leak if it isn't the "lock in one method, unlock
				// in another" pattern; sync code in this repo never does
				// that, so flag it.
				for _, h := range lb.liveLocks() {
					r.Report(fd.Body.Rbrace, "lock-balance",
						fmt.Sprintf("%s: function end reached with %s still locked", fd.Name.Name, h.recv))
				}
			}
		}
	}
}

func lockScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	return seg == "pager" || seg == "diskindex" || seg == "wal" || seg == "front" ||
		seg == "cluster" ||
		strings.Contains(path, "lockbalance") // testdata corpora
}

// ioMethods are the blocking storage primitives that must never run under
// a lock: holding a shard lock across one serializes every concurrent
// search behind a disk read — and the WAL appends sync the log, so one
// held across them serializes every commit behind an fsync.
var ioMethods = map[string]bool{
	"ReadPage":         true,
	"ReadPageCtx":      true,
	"WritePage":        true,
	"Sync":             true,
	"Allocate":         true,
	"ReadVia":          true,
	"Append":           true,
	"AppendPageImage":  true,
	"AppendCommit":     true,
	"AppendCheckpoint": true,
}

// lockIOMethods extends ioMethods for the I/O-under-lock scan only: an
// engine search may walk the disk index, so the front door's cache and
// coalescer shard locks must never be held across one, or a slow page
// read serializes every request hashing to that shard. ctx-flow's
// reachability keeps using ioMethods alone — Search/SearchK are the
// documented nil-ctx compat wrappers around SearchKCtx and must not be
// reclassified as direct storage I/O.
var lockIOMethods = map[string]bool{
	"SearchKCtx": true,
	// The router's shard RPCs: a replica call or health probe is a full
	// network round trip — held across the latency-window or breaker
	// mutex it would serialize every concurrent fan-out behind one slow
	// replica.
	"ShardQuery":  true,
	"ProbeHealth": true,
}

type heldLock struct {
	recv  string // printed receiver expression, e.g. "sh.mu"
	read  bool
	pos   ast.Node
	defrd bool // a defer releases it on every path
}

type lockWalker struct {
	pkg    *Package
	r      *Reporter
	fnName string
	held   []heldLock
}

func (w *lockWalker) isMutexCall(call *ast.CallExpr) (recv string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, okSel := w.pkg.Info.Selections[sel]
	if !okSel {
		return "", "", false
	}
	fn, okFn := selection.Obj().(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func (w *lockWalker) acquire(recv string, read bool, n ast.Node) {
	w.held = append(w.held, heldLock{recv: recv, read: read, pos: n})
}

func (w *lockWalker) release(recv string, read bool) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].recv == recv && w.held[i].read == read {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
	// Unlock without a matching lock in this branch: conditional locking;
	// out of scope for this analysis.
}

func (w *lockWalker) markDeferred(recv string, read bool) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].recv == recv && w.held[i].read == read {
			w.held[i].defrd = true
			return
		}
	}
}

// liveLocks returns the locks currently held and not covered by a defer.
func (w *lockWalker) liveLocks() []heldLock {
	var live []heldLock
	for _, h := range w.held {
		if !h.defrd {
			live = append(live, h)
		}
	}
	return live
}

// anyHeld reports whether any lock (deferred or not) is currently held —
// a deferred unlock still means the lock is held at this program point.
func (w *lockWalker) anyHeld() (heldLock, bool) {
	if len(w.held) == 0 {
		return heldLock{}, false
	}
	return w.held[len(w.held)-1], true
}

// walkBlock walks statements in order, updating lock state.
func (w *lockWalker) walkBlock(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		w.walkStmt(stmt)
	}
}

func (w *lockWalker) snapshot() []heldLock {
	s := make([]heldLock, len(w.held))
	copy(s, w.held)
	return s
}

func (w *lockWalker) restore(s []heldLock) { w.held = s }

func (w *lockWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.handleCall(call)
			return
		}
		w.scanIOUnderLock(s)
	case *ast.DeferStmt:
		if recv, method, ok := w.isMutexCall(s.Call); ok {
			switch method {
			case "Unlock":
				w.markDeferred(recv, false)
			case "RUnlock":
				w.markDeferred(recv, true)
			}
			return
		}
		// A deferred closure releasing the lock counts too.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, method, ok := w.isMutexCall(call); ok {
						switch method {
						case "Unlock":
							w.markDeferred(recv, false)
						case "RUnlock":
							w.markDeferred(recv, true)
						}
					}
				}
				return true
			})
		}
	case *ast.ReturnStmt:
		for _, h := range w.liveLocks() {
			w.r.Report(s.Pos(), "lock-balance",
				fmt.Sprintf("return with %s still locked (acquired at line %d); unlock on every path or use defer",
					h.recv, w.r.fset.Position(h.pos.Pos()).Line))
		}
		w.scanIOUnderLock(s)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanIOUnderLock(s.Cond)
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
		if s.Else != nil {
			snap = w.snapshot()
			w.walkStmt(s.Else)
			w.restore(snap)
		}
	case *ast.BlockStmt:
		w.walkBlock(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.RangeStmt:
		w.scanIOUnderLock(s.X)
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	default:
		w.scanIOUnderLock(stmt)
	}
}

func (w *lockWalker) handleCall(call *ast.CallExpr) {
	if recv, method, ok := w.isMutexCall(call); ok {
		switch method {
		case "Lock":
			w.acquire(recv, false, call)
		case "RLock":
			w.acquire(recv, true, call)
		case "Unlock":
			w.release(recv, false)
		case "RUnlock":
			w.release(recv, true)
		}
		return
	}
	w.scanIOUnderLock(call)
}

// scanIOUnderLock flags storage I/O calls made while any lock is held.
func (w *lockWalker) scanIOUnderLock(n ast.Node) {
	if n == nil {
		return
	}
	h, locked := w.anyHeld()
	if !locked {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // closures run later, possibly after unlock
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (!ioMethods[sel.Sel.Name] && !lockIOMethods[sel.Sel.Name]) {
			return true
		}
		selection, ok := w.pkg.Info.Selections[sel]
		if !ok {
			return true
		}
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		if !strings.Contains(path, "/pager") && !strings.Contains(path, "/diskindex") &&
			!strings.Contains(path, "/wal") && !strings.Contains(path, "/server") &&
			!strings.Contains(path, "/cluster") && !strings.Contains(path, "lockbalance") {
			return true
		}
		w.r.Report(call.Pos(), "lock-balance",
			fmt.Sprintf("%s.%s performs storage I/O while %s is held; release the lock around the transfer",
				exprString(sel.X), sel.Sel.Name, h.recv))
		return true
	})
}
