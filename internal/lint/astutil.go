package lint

import (
	"go/ast"
	"go/types"
)

// childNodes returns the direct children of n, for walkers that need to
// control their own descent (e.g. to thread panic-context state).
func childNodes(n ast.Node) []ast.Node {
	var children []ast.Node
	depth := 0
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			depth--
			return true
		}
		depth++
		if depth == 2 {
			children = append(children, m)
			depth--
			return false
		}
		return true
	})
	return children
}

// exprString renders an expression for structural comparison (the append
// reuse idiom matches LHS against the appended slice by printed form).
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
