package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkAtomicPublish guards the single-publication-point discipline of
// every atomic.Pointer field in the module (the mutable index's snapshot
// pointer, the front door's AttachDoor CAS, the caches' swap-on-rebuild
// pointers):
//
//   - Load is always legal — that is what readers do;
//   - Store, Swap and CompareAndSwap are publication events: each site
//     must carry //nnc:publish <reason> on its line or the line above, so
//     every place a new version of shared state becomes visible is
//     enumerated and reviewed. An unblessed store is a finding; a stale
//     or reason-less //nnc:publish is too (the stale-allow machinery).
//   - any other mention of the field — copying it, taking its address,
//     passing it by value — aliases the pointer cell and bypasses the
//     atomic protocol entirely.
//
// Local variables of atomic.Pointer type are out of scope: they are not
// shared state until stored in a field, at which point the field rules
// apply.
func checkAtomicPublish(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			// Pass 1: bless the x.f receivers of x.f.Method(...) calls and
			// vet the publication sites.
			blessed := map[*ast.SelectorExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !ok || !atomicPointerField(info, field) {
					return true
				}
				blessed[field] = true
				switch sel.Sel.Name {
				case "Load":
				case "Store", "Swap", "CompareAndSwap":
					if !r.SiteAllowed(call.Pos(), "publish") {
						r.Report(call.Pos(), "atomic-publish",
							fmt.Sprintf("unannotated %s on atomic.Pointer field %s; every publication site must carry //nnc:publish <reason>",
								sel.Sel.Name, exprString(field)))
					}
				default:
					r.Report(call.Pos(), "atomic-publish",
						fmt.Sprintf("unexpected method %s on atomic.Pointer field %s; only Load and annotated Store/Swap/CompareAndSwap are part of the publication protocol",
							sel.Sel.Name, exprString(field)))
				}
				return true
			})
			// Pass 2: any other mention of an atomic.Pointer field aliases
			// the cell outside the protocol.
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || blessed[sel] || !atomicPointerField(info, sel) {
					return true
				}
				r.Report(sel.Pos(), "atomic-publish",
					fmt.Sprintf("atomic.Pointer field %s used without Load/Store; copying or aliasing the cell bypasses the publication protocol", exprString(sel)))
				return true
			})
		}
	}
}

// atomicPointerField reports whether sel resolves to a struct field whose
// type is sync/atomic.Pointer[T].
func atomicPointerField(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	named, ok := selection.Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
