package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkNoReflectSort bans reflection-based sorting and fmt formatting in
// the hot packages. PR 3 replaced every sort.Slice with a typed sort
// precisely because the reflect-based swap costs ~3x and boxes the
// closure; this check is the regression guard. fmt stays legal inside
// String/GoString/Format/Error methods (they exist to format) and in
// functions that return an error (message construction on the failure
// path), but a fmt call feeding a panic in the middle of a numeric kernel
// belongs to strconv.
func checkNoReflectSort(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		if !hotPkg(pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fmtOK := fmtAllowedIn(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					path, name := calleePathQual(pkg.Info, call)
					switch {
					case path == "sort" && strings.HasPrefix(name, "Slice"):
						r.Report(call.Pos(), "no-reflect-sort",
							fmt.Sprintf("sort.%s sorts through reflection; write a typed sort (see internal/distr/sort.go)", name))
					case path == "fmt" && !fmtOK:
						r.Report(call.Pos(), "no-reflect-sort",
							fmt.Sprintf("fmt.%s in hot package %s; use strconv or move formatting out of the hot tree", name, pkg.Types.Name()))
					case path == "reflect":
						r.Report(call.Pos(), "no-reflect-sort",
							fmt.Sprintf("reflect.%s in hot package %s", name, pkg.Types.Name()))
					}
					return true
				})
			}
		}
	}
}

// hotPkg selects the numeric-kernel packages by final path segment.
func hotPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	switch seg {
	case "core", "distr", "flow", "geom", "rtree", "slab", "uncertain":
		return true
	}
	return strings.Contains(path, "reflectsort") // testdata corpora
}

// fmtAllowedIn: display methods and error-returning functions may format.
func fmtAllowedIn(pkg *Package, fd *ast.FuncDecl) bool {
	switch fd.Name.Name {
	case "String", "GoString", "Format", "Error":
		return true
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
				return true
			}
		}
	}
	return false
}
