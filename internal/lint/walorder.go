package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkWALOrder verifies the commit protocol of DESIGN.md §2d on every
// function in the wal and diskindex packages: a transaction's page images
// are all appended before its commit record, a commit or checkpoint record
// is fsynced before any success return, and the log is never checkpointed
// or truncated while appended images still await their commit. The
// analysis mirrors lock-balance's branch-local walk — entering a nested
// block snapshots the protocol state and leaving restores it — so the
// early-error-return shape (append; if err { return err }; commit) checks
// cleanly while a success path that skips a step is still caught.
//
// Tracked events, in the source order the walk encounters them:
//
//   - AppendPageImage marks images pending; pending images after the
//     commit record mean the image belongs to no transaction;
//   - AppendCommit consumes the pending images (the wal-package method
//     syncs internally, so callers are done);
//   - AppendCheckpoint / Reset / Truncate while images are pending would
//     silently discard the transaction;
//   - inside the wal package itself, appendRecord(RecCommit|RecCheckpoint)
//     arms a sync obligation that only an explicit Sync call (or a
//     "return f.Sync()" tail) discharges — error-aborting returns are
//     exempt, because a failed append never promised durability.
func checkWALOrder(prog *Program, r *Reporter) {
	for _, pkg := range prog.Pkgs {
		if !walScopedPkg(pkg.ImportPath) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &walWalker{pkg: pkg, r: r, fnName: fd.Name.Name}
				w.walkBlock(fd.Body)
				w.checkExit(fd.Body.Rbrace, nil)
			}
		}
	}
}

func walScopedPkg(path string) bool {
	seg := path[strings.LastIndex(path, "/")+1:]
	return seg == "wal" || seg == "diskindex" ||
		strings.Contains(path, "walorder") // testdata corpora
}

// walState is the branch-local protocol state.
type walState struct {
	images    bool // page images appended, commit record not yet seen
	committed bool // commit record appended on this path
	needSync  bool // raw commit/checkpoint record appended, log not synced
	imagePos  ast.Node
	syncPos   ast.Node
}

type walWalker struct {
	pkg    *Package
	r      *Reporter
	fnName string
	st     walState
}

func (w *walWalker) snapshot() walState { return w.st }
func (w *walWalker) restore(s walState) { w.st = s }
func (w *walWalker) walkBlock(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		w.walkStmt(stmt)
	}
}

// protoCall classifies a call as a WAL-protocol event. Append*, Reset and
// appendRecord must resolve to the wal/diskindex packages (or a corpus);
// Sync and Truncate match any receiver, because the log's backing file is
// an os.File (or a faultfile wrapper) and a spurious state clear is merely
// conservative.
func (w *walWalker) protoCall(call *ast.CallExpr) (name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		// appendRecord is a plain method call in the corpus too; plain
		// ident calls only matter for the corpus's free-function form.
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "appendRecord" {
			return id.Name, true
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Sync", "Truncate":
		return sel.Sel.Name, true
	case "AppendPageImage", "AppendCommit", "AppendCheckpoint", "Reset", "appendRecord":
	default:
		return "", false
	}
	selection, okSel := w.pkg.Info.Selections[sel]
	if !okSel {
		return "", false
	}
	fn, okFn := selection.Obj().(*types.Func)
	if !okFn || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if !strings.Contains(path, "/wal") && !strings.Contains(path, "/diskindex") &&
		!strings.Contains(path, "walorder") {
		return "", false
	}
	return sel.Sel.Name, true
}

// recordTypeArmsSync reports whether an appendRecord call writes a commit
// or checkpoint record — the two record types whose append promises an
// fsync before the caller may report success.
func recordTypeArmsSync(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	var name string
	switch a := arg.(type) {
	case *ast.Ident:
		name = a.Name
	case *ast.SelectorExpr:
		name = a.Sel.Name
	default:
		return false
	}
	return name == "RecCommit" || name == "RecCheckpoint"
}

func (w *walWalker) handleCall(call *ast.CallExpr) {
	name, ok := w.protoCall(call)
	if !ok {
		return
	}
	switch name {
	case "AppendPageImage":
		if w.st.committed {
			w.r.Report(call.Pos(), "wal-order",
				fmt.Sprintf("%s: page image appended after the transaction's commit record; all images must precede AppendCommit", w.fnName))
		}
		w.st.images = true
		w.st.imagePos = call
	case "AppendCommit":
		w.st.committed = true
		w.st.images = false
	case "AppendCheckpoint":
		if w.st.images {
			w.r.Report(call.Pos(), "wal-order",
				fmt.Sprintf("%s: checkpoint record appended while page images await their commit; checkpoint may not precede the commit sync", w.fnName))
		}
	case "Reset", "Truncate":
		if w.st.images {
			w.r.Report(call.Pos(), "wal-order",
				fmt.Sprintf("%s: log truncated while page images await their commit; the transaction would be silently discarded", w.fnName))
		}
	case "Sync":
		w.st.needSync = false
	case "appendRecord":
		if recordTypeArmsSync(call) {
			w.st.needSync = true
			w.st.syncPos = call
		}
	}
}

// scanCalls visits every call in n in pre-order (skipping closures, which
// run on their own schedule) and feeds each to handleCall.
func (w *walWalker) scanCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			w.handleCall(call)
		}
		return true
	})
}

// checkExit reports protocol obligations still pending at a function exit.
// ret is nil for the fall-off-the-end case.
func (w *walWalker) checkExit(pos token.Pos, ret *ast.ReturnStmt) {
	if ret != nil {
		// A tail that performs the sync itself (return l.f.Sync())
		// discharges the obligation before the abort test below.
		if returnContainsSync(ret) {
			w.st.needSync = false
		}
		if w.returnAborts(ret) {
			return // error path: a failed append never promised durability
		}
	}
	if w.st.needSync {
		line := 0
		if w.st.syncPos != nil {
			line = w.r.fset.Position(w.st.syncPos.Pos()).Line
		}
		w.r.Report(pos, "wal-order",
			fmt.Sprintf("%s: commit/checkpoint record appended (line %d) but the log is not synced on this success path; append must reach Sync before returning", w.fnName, line))
	}
	if w.st.images && !w.st.committed {
		line := 0
		if w.st.imagePos != nil {
			line = w.r.fset.Position(w.st.imagePos.Pos()).Line
		}
		w.r.Report(pos, "wal-order",
			fmt.Sprintf("%s: page images appended (line %d) but no commit record on this success path; the transaction is never durable", w.fnName, line))
	}
}

// returnContainsSync reports whether any result expression performs the
// log sync inline.
func returnContainsSync(ret *ast.ReturnStmt) bool {
	found := false
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// returnAborts reports whether the return carries a non-nil error value —
// the abort shape (return err / return fmt.Errorf(...)) that exempts a
// path from the protocol's success obligations.
func (w *walWalker) returnAborts(ret *ast.ReturnStmt) bool {
	info := w.pkg.Info
	for _, res := range ret.Results {
		e := ast.Unparen(res)
		if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		t := info.TypeOf(e)
		if t == nil {
			continue
		}
		if types.Implements(t, errorInterface()) {
			return true
		}
	}
	return false
}

func errorInterface() *types.Interface {
	return types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
}

func (w *walWalker) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanCalls(res)
		}
		w.checkExit(s.Pos(), s)
		// Control never continues past a return: clear the state so a
		// top-level return isn't re-reported at the closing brace.
		w.st = walState{}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanCalls(s.Cond)
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
		if s.Else != nil {
			snap = w.snapshot()
			w.walkStmt(s.Else)
			w.restore(snap)
		}
	case *ast.BlockStmt:
		w.walkBlock(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.RangeStmt:
		w.scanCalls(s.X)
		snap := w.snapshot()
		w.walkBlock(s.Body)
		w.restore(snap)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			snap := w.snapshot()
			for _, st := range cc.Body {
				w.walkStmt(st)
			}
			w.restore(snap)
		}
	case *ast.DeferStmt:
		// Deferred work runs at exit in unwound order; modelling it
		// path-sensitively is out of scope, and no commit path in the
		// repo defers protocol calls.
	default:
		w.scanCalls(stmt)
	}
}
