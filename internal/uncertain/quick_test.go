package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialdom/internal/geom"
)

// rawObj is a quick-generated object on a small integer grid.
type rawObj struct {
	Xs [6]uint8
	Ys [6]uint8
	Ws [6]uint8
	N  uint8
}

func (r rawObj) build(id int) (*Object, error) {
	n := int(r.N%6) + 1
	pts := make([]geom.Point, n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Point{float64(r.Xs[i] % 32), float64(r.Ys[i] % 32)}
		ws[i] = float64(r.Ws[i]%16) + 1
	}
	return New(id, pts, ws)
}

var quickCfg = &quick.Config{MaxCount: 1500, Rand: rand.New(rand.NewSource(2222))}

// Probabilities always sum to one and preserve weight ratios.
func TestQuickNormalization(t *testing.T) {
	f := func(r rawObj) bool {
		o, err := r.build(1)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < o.Len(); i++ {
			sum += o.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Ratio preservation between the first two instances.
		if o.Len() >= 2 {
			w0 := float64(r.Ws[0]%16) + 1
			w1 := float64(r.Ws[1]%16) + 1
			if math.Abs(o.Prob(0)/o.Prob(1)-w0/w1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// The MBR contains every instance, and MinDist/MaxDist bracket instance
// distances from arbitrary probes.
func TestQuickMBRAndDistBounds(t *testing.T) {
	f := func(r rawObj, qx, qy uint8) bool {
		o, err := r.build(1)
		if err != nil {
			return false
		}
		for i := 0; i < o.Len(); i++ {
			if !o.MBR().ContainsPoint(o.Instance(i)) {
				return false
			}
		}
		q := geom.Point{float64(qx % 48), float64(qy % 48)}
		lo, hi := o.MinDist(q), o.MaxDist(q)
		for i := 0; i < o.Len(); i++ {
			d := geom.Dist(q, o.Instance(i))
			if d < lo-1e-9 || d > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// SameDistribution is reflexive and symmetric under permutation of
// instances.
func TestQuickSameDistributionSymmetry(t *testing.T) {
	f := func(r rawObj, permSeed int64) bool {
		o, err := r.build(1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(permSeed))
		perm := rng.Perm(o.Len())
		pts := make([]geom.Point, o.Len())
		ws := make([]float64, o.Len())
		for i, pi := range perm {
			pts[i] = o.Instance(pi)
			ws[i] = o.Prob(pi)
		}
		shuffled := MustNew(2, pts, ws)
		return SameDistribution(o, o, 1e-9) &&
			SameDistribution(o, shuffled, 1e-9) &&
			SameDistribution(shuffled, o, 1e-9)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// The local R-tree agrees with linear scans for quick-generated objects.
func TestQuickLocalTreeAgrees(t *testing.T) {
	f := func(r rawObj, qx, qy uint8) bool {
		o, err := r.build(1)
		if err != nil {
			return false
		}
		q := geom.Point{float64(qx % 48), float64(qy % 48)}
		tmin, ok1 := o.LocalTree().MinDist(q)
		tmax, ok2 := o.LocalTree().MaxDist(q)
		if !ok1 || !ok2 {
			return false
		}
		return math.Abs(tmin-o.MinDist(q)) < 1e-9 && math.Abs(tmax-o.MaxDist(q)) < 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
