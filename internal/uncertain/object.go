// Package uncertain models objects with multiple instances: discrete
// uncertain objects (each instance carries an occurrence probability) and
// multi-valued objects (each instance carries a weight that is normalized to
// a probability, Section 2.1 of the paper). A query is itself such an
// object.
//
// Each object owns a minimum bounding rectangle, a lazily built local R-tree
// with fanout 4 (matching the paper's experimental setup), and — for query
// objects — the convex hull of its instances, which is the only part of the
// query that dominance checks need to consult (Section 5.1.2).
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"spatialdom/internal/geom"
	"spatialdom/internal/rtree"
)

// LocalTreeFanout is the fanout of the per-object instance R-tree, matching
// the paper's experiments ("its instances are kept in a local R-Tree with
// fan-out 4").
const LocalTreeFanout = 4

// Common construction errors.
var (
	ErrNoInstances   = errors.New("uncertain: object needs at least one instance")
	ErrDimMismatch   = errors.New("uncertain: instances disagree in dimensionality")
	ErrBadWeight     = errors.New("uncertain: weights must be finite and non-negative")
	ErrZeroMass      = errors.New("uncertain: total weight mass must be positive")
	ErrBadCoordinate = errors.New("uncertain: coordinates must be finite")
	ErrWeightCount   = errors.New("uncertain: weight count must match instance count")
)

// Object is an object with multiple weighted instances. Construct with New;
// the zero value is not usable. Objects are immutable after construction and
// safe for concurrent use.
type Object struct {
	id    int
	label string
	pts   []geom.Point
	probs []float64
	mass  float64 // original total weight before normalization
	mbr   geom.Rect

	treeOnce sync.Once
	tree     *rtree.Tree

	hullOnce sync.Once
	hull     []int

	sphereOnce sync.Once
	sphere     geom.Sphere
}

// New builds an object from its instances and optional weights.
//
// When weights is nil every instance receives probability 1/len(pts). When
// weights are given they are normalized to sum to one (the multi-valued →
// uncertain transformation of Section 2.1); the pre-normalization mass is
// retained and available via Mass. Instance slices are copied.
func New(id int, pts []geom.Point, weights []float64) (*Object, error) {
	if len(pts) == 0 {
		return nil, ErrNoInstances
	}
	if weights != nil && len(weights) != len(pts) {
		return nil, fmt.Errorf("%w: %d weights for %d instances", ErrWeightCount, len(weights), len(pts))
	}
	d := len(pts[0])
	if d == 0 {
		return nil, ErrDimMismatch
	}
	cp := make([]geom.Point, len(pts))
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("%w: instance %d has dim %d, want %d", ErrDimMismatch, i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: instance %d", ErrBadCoordinate, i)
			}
		}
		cp[i] = p.Clone()
	}
	probs := make([]float64, len(pts))
	var mass float64
	if weights == nil {
		mass = 1
		u := 1 / float64(len(pts))
		for i := range probs {
			probs[i] = u
		}
	} else {
		for i, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("%w: weight %d = %g", ErrBadWeight, i, w)
			}
			mass += w
			probs[i] = w
		}
		if mass <= 0 {
			return nil, ErrZeroMass
		}
		for i := range probs {
			probs[i] /= mass
		}
	}
	return &Object{
		id:    id,
		pts:   cp,
		probs: probs,
		mass:  mass,
		mbr:   geom.BoundingRect(cp),
	}, nil
}

// FromNormalized builds an object from instances whose probabilities are
// already normalized, copying the probability bits verbatim — no ÷mass
// renormalization. This is the wire-decode constructor: a router
// reassembling shard answers (or forwarding a query) must reproduce the
// exact float64 values the shard engine computed with, and New's
// renormalization (w/Σw with Σw ≈ 1 but rarely exactly 1) would perturb
// the low bits and with them every downstream dominance decision. The
// probabilities must be finite and non-negative; their sum is trusted,
// and Mass reports 1.
func FromNormalized(id int, pts []geom.Point, probs []float64) (*Object, error) {
	if len(pts) == 0 {
		return nil, ErrNoInstances
	}
	if len(probs) != len(pts) {
		return nil, fmt.Errorf("%w: %d probabilities for %d instances", ErrWeightCount, len(probs), len(pts))
	}
	d := len(pts[0])
	if d == 0 {
		return nil, ErrDimMismatch
	}
	cp := make([]geom.Point, len(pts))
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("%w: instance %d has dim %d, want %d", ErrDimMismatch, i, len(p), d)
		}
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: instance %d", ErrBadCoordinate, i)
			}
		}
		cp[i] = p.Clone()
	}
	pc := make([]float64, len(probs))
	for i, w := range probs {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("%w: probability %d = %g", ErrBadWeight, i, w)
		}
		pc[i] = w
	}
	return &Object{
		id:    id,
		pts:   cp,
		probs: pc,
		mass:  1,
		mbr:   geom.BoundingRect(cp),
	}, nil
}

// MustNew is New that panics on error; intended for tests and examples.
func MustNew(id int, pts []geom.Point, weights []float64) *Object {
	o, err := New(id, pts, weights)
	if err != nil {
		panic(err)
	}
	return o
}

// ID returns the object identifier.
func (o *Object) ID() int { return o.id }

// Label returns the optional human-readable label.
func (o *Object) Label() string { return o.label }

// SetLabel attaches a human-readable label (returns o for chaining). Must be
// called before the object is shared across goroutines.
func (o *Object) SetLabel(s string) *Object {
	o.label = s
	return o
}

// Len returns the number of instances.
func (o *Object) Len() int { return len(o.pts) }

// Dim returns the dimensionality of the instances.
func (o *Object) Dim() int { return len(o.pts[0]) }

// Instance returns the i-th instance point. The returned slice must not be
// modified.
func (o *Object) Instance(i int) geom.Point { return o.pts[i] }

// Prob returns the probability of the i-th instance.
func (o *Object) Prob(i int) float64 { return o.probs[i] }

// Points returns the instance points. The returned slice must not be
// modified.
func (o *Object) Points() []geom.Point { return o.pts }

// Probs returns the instance probabilities. The returned slice must not be
// modified.
func (o *Object) Probs() []float64 { return o.probs }

// Mass returns the total weight before normalization (1 for uniform
// objects). NN ranks are preserved by normalization whenever all objects
// share the same mass.
func (o *Object) Mass() float64 { return o.mass }

// MBR returns the minimum bounding rectangle of the instances.
func (o *Object) MBR() geom.Rect { return o.mbr }

// LocalTree returns the per-object instance R-tree (fanout 4), building it
// on first use. Entry IDs are instance indices.
//
//nnc:coldpath sync.Once lazy build; every later call returns the cached tree
func (o *Object) LocalTree() *rtree.Tree {
	o.treeOnce.Do(func() {
		entries := make([]rtree.Entry, len(o.pts))
		for i, p := range o.pts {
			entries[i] = rtree.Entry{Rect: geom.PointRect(p), ID: i}
		}
		o.tree = rtree.Bulk(entries, 2, LocalTreeFanout)
	})
	return o.tree
}

// HullIndices returns the indices of the instances on the convex hull (see
// geom.ConvexHullIndices for the per-dimensionality guarantees), computing
// them on first use.
//
//nnc:coldpath sync.Once lazy build; every later call returns the cached indices
func (o *Object) HullIndices() []int {
	o.hullOnce.Do(func() { o.hull = geom.ConvexHullIndices(o.pts) })
	return o.hull
}

// Sphere returns the Euclidean bounding hypersphere of the instances
// (Ritter's algorithm), computed on first use. Callers under other metrics
// must re-measure the radius from the returned center; the center slice
// must not be modified.
//
//nnc:coldpath sync.Once lazy build; every later call returns the cached sphere
func (o *Object) Sphere() geom.Sphere {
	o.sphereOnce.Do(func() { o.sphere = geom.BoundingSphere(o.pts) })
	return o.sphere
}

// HullPoints returns the hull instances as points.
func (o *Object) HullPoints() []geom.Point {
	idx := o.HullIndices()
	pts := make([]geom.Point, len(idx))
	for i, j := range idx {
		pts[i] = o.pts[j]
	}
	return pts
}

// MinDist returns δmin(q, O): the distance from q to the closest instance.
func (o *Object) MinDist(q geom.Point) float64 {
	return math.Sqrt(geom.MinSqDistToPoints(q, o.pts))
}

// MaxDist returns δmax(q, O): the distance from q to the farthest instance.
func (o *Object) MaxDist(q geom.Point) float64 {
	return math.Sqrt(geom.MaxSqDistToPoints(q, o.pts))
}

// String formats a short description of the object.
func (o *Object) String() string {
	if o.label != "" {
		return fmt.Sprintf("Object(%d %q, %d×%dd)", o.id, o.label, o.Len(), o.Dim())
	}
	return fmt.Sprintf("Object(%d, %d×%dd)", o.id, o.Len(), o.Dim())
}

// SameDistribution reports whether two objects define exactly the same
// discrete distribution over points (same instance/probability multiset).
// It is used by the SD operators' U_Q ≠ V_Q side condition. Instances are
// matched by exact coordinates; probabilities are compared with eps
// tolerance.
func SameDistribution(a, b *Object, eps float64) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	// Aggregate duplicate points so representation differences don't matter.
	acc := func(o *Object) map[string]float64 {
		m := make(map[string]float64, o.Len())
		for i, p := range o.pts {
			m[pointKey(p)] += o.probs[i]
		}
		return m
	}
	ma, mb := acc(a), acc(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, va := range ma {
		vb, ok := mb[k]
		if !ok || math.Abs(va-vb) > eps {
			return false
		}
	}
	return true
}

func pointKey(p geom.Point) string {
	b := make([]byte, 0, len(p)*8)
	for _, v := range p {
		u := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(u>>s))
		}
	}
	return string(b)
}
