package uncertain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spatialdom/internal/geom"
)

func TestNewUniform(t *testing.T) {
	o, err := New(1, []geom.Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 || o.Dim() != 2 || o.ID() != 1 {
		t.Fatalf("basic accessors wrong: %v", o)
	}
	for i := 0; i < 4; i++ {
		if o.Prob(i) != 0.25 {
			t.Fatalf("Prob(%d) = %g", i, o.Prob(i))
		}
	}
	if o.Mass() != 1 {
		t.Fatalf("Mass = %g", o.Mass())
	}
	want := geom.NewRect(geom.Point{0, 0}, geom.Point{3, 3})
	if !o.MBR().Equal(want) {
		t.Fatalf("MBR = %v", o.MBR())
	}
}

func TestNewNormalizesWeights(t *testing.T) {
	o, err := New(2, []geom.Point{{0}, {1}, {2}}, []float64{2, 6, 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.Prob(0) != 0.2 || o.Prob(1) != 0.6 || o.Prob(2) != 0.2 {
		t.Fatalf("probs = %v", o.Probs())
	}
	if o.Mass() != 10 {
		t.Fatalf("Mass = %g", o.Mass())
	}
	var sum float64
	for _, p := range o.Probs() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %g", sum)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []geom.Point
		ws   []float64
		want error
	}{
		{"empty", nil, nil, ErrNoInstances},
		{"dim mismatch", []geom.Point{{0, 0}, {1}}, nil, ErrDimMismatch},
		{"zero-dim", []geom.Point{{}}, nil, ErrDimMismatch},
		{"weight count", []geom.Point{{0}}, []float64{1, 2}, ErrWeightCount},
		{"negative weight", []geom.Point{{0}, {1}}, []float64{1, -1}, ErrBadWeight},
		{"nan weight", []geom.Point{{0}}, []float64{math.NaN()}, ErrBadWeight},
		{"zero mass", []geom.Point{{0}, {1}}, []float64{0, 0}, ErrZeroMass},
		{"nan coordinate", []geom.Point{{math.NaN()}}, nil, ErrBadCoordinate},
		{"inf coordinate", []geom.Point{{math.Inf(1)}}, nil, ErrBadCoordinate},
	}
	for _, c := range cases {
		if _, err := New(0, c.pts, c.ws); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestNewCopiesInput(t *testing.T) {
	pts := []geom.Point{{1, 1}}
	o := MustNew(0, pts, nil)
	pts[0][0] = 99
	if o.Instance(0)[0] != 1 {
		t.Fatal("object aliases caller's points")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, nil, nil)
}

func TestMinMaxDist(t *testing.T) {
	o := MustNew(0, []geom.Point{{0, 0}, {3, 4}}, nil)
	q := geom.Point{0, 0}
	if d := o.MinDist(q); d != 0 {
		t.Fatalf("MinDist = %g", d)
	}
	if d := o.MaxDist(q); d != 5 {
		t.Fatalf("MaxDist = %g", d)
	}
}

func TestLocalTreeAgreesWithDirectScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 60)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	o := MustNew(0, pts, nil)
	tr := o.LocalTree()
	if tr.Len() != len(pts) {
		t.Fatalf("local tree size = %d", tr.Len())
	}
	if tr != o.LocalTree() {
		t.Fatal("LocalTree not cached")
	}
	for k := 0; k < 20; k++ {
		q := geom.Point{rng.Float64() * 12, rng.Float64() * 12, rng.Float64() * 12}
		if d, _ := tr.MinDist(q); math.Abs(d-o.MinDist(q)) > 1e-9 {
			t.Fatalf("tree MinDist = %g, scan = %g", d, o.MinDist(q))
		}
		if d, _ := tr.MaxDist(q); math.Abs(d-o.MaxDist(q)) > 1e-9 {
			t.Fatalf("tree MaxDist = %g, scan = %g", d, o.MaxDist(q))
		}
	}
}

func TestHull(t *testing.T) {
	o := MustNew(0, []geom.Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}}, nil)
	hull := o.HullIndices()
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	if len(o.HullPoints()) != 4 {
		t.Fatal("HullPoints size")
	}
	// Cached.
	if &hull[0] != &o.HullIndices()[0] {
		t.Fatal("hull not cached")
	}
}

func TestSameDistribution(t *testing.T) {
	a := MustNew(0, []geom.Point{{0, 0}, {1, 1}}, []float64{1, 3})
	b := MustNew(1, []geom.Point{{1, 1}, {0, 0}}, []float64{3, 1}) // permuted
	c := MustNew(2, []geom.Point{{0, 0}, {1, 1}}, []float64{2, 2})
	d := MustNew(3, []geom.Point{{0, 0}, {2, 2}}, []float64{1, 3})
	if !SameDistribution(a, b, 1e-9) {
		t.Fatal("permutation must be the same distribution")
	}
	if SameDistribution(a, c, 1e-9) {
		t.Fatal("different probabilities")
	}
	if SameDistribution(a, d, 1e-9) {
		t.Fatal("different support")
	}
	// Duplicated instance vs merged instance.
	e := MustNew(4, []geom.Point{{0, 0}, {0, 0}, {1, 1}}, []float64{0.5, 0.5, 3})
	if !SameDistribution(a, e, 1e-9) {
		t.Fatal("split duplicate instances must compare equal")
	}
	f := MustNew(5, []geom.Point{{0}}, nil)
	if SameDistribution(a, f, 1e-9) {
		t.Fatal("dimension mismatch must differ")
	}
}

func TestStringAndLabel(t *testing.T) {
	o := MustNew(7, []geom.Point{{0, 0}}, nil)
	if o.String() == "" {
		t.Fatal("empty String")
	}
	o.SetLabel("alice")
	if o.Label() != "alice" {
		t.Fatal("label lost")
	}
	if o.String() == "" {
		t.Fatal("empty labeled String")
	}
}
