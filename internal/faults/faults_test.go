package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassPermanent},
		{io.EOF, ClassShortRead},
		{io.ErrUnexpectedEOF, ClassShortRead},
		{ErrShortRead, ClassShortRead},
		{syscall.EIO, ClassTransient},
		{syscall.EINTR, ClassTransient},
		{syscall.EAGAIN, ClassTransient},
		{syscall.EBUSY, ClassTransient},
		{syscall.ETIMEDOUT, ClassTransient},
		{ErrTransientIO, ClassTransient},
		{fmt.Errorf("wrapped: %w", syscall.EIO), ClassTransient},
		{syscall.EBADF, ClassPermanent},
		{errors.New("something else"), ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestPageErrorMatching(t *testing.T) {
	pe := &PageError{Op: "read", Page: 7, Err: ErrChecksum, Quarantined: true}
	if !errors.Is(pe, ErrChecksum) {
		t.Error("quarantined PageError should match its class sentinel")
	}
	if !errors.Is(pe, ErrUnavailable) {
		t.Error("quarantined PageError should match ErrUnavailable")
	}
	if !IsUnavailable(pe) {
		t.Error("IsUnavailable should see through PageError")
	}

	transient := &PageError{Op: "read", Page: 7, Err: ErrTransientIO}
	if errors.Is(transient, ErrUnavailable) {
		t.Error("non-quarantined PageError must NOT match ErrUnavailable")
	}
	if !errors.Is(transient, ErrTransientIO) {
		t.Error("PageError should unwrap to its class")
	}

	var got *PageError
	if !errors.As(fmt.Errorf("outer: %w", pe), &got) || got.Page != 7 {
		t.Error("errors.As should recover the PageError through wrapping")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	r := Retry{Max: 5, Base: 100 * time.Microsecond, Cap: time.Millisecond}
	for attempt := 0; attempt < 6; attempt++ {
		a := r.Backoff(attempt, 42)
		b := r.Backoff(attempt, 42)
		if a != b {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, a, b)
		}
		d := r.Base << attempt
		if d > r.Cap {
			d = r.Cap
		}
		if a < d/2 || a > d {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, a, d/2, d)
		}
	}
	// Different salts jitter differently (at least once over a few salts).
	same := true
	for salt := uint64(0); salt < 8; salt++ {
		if r.Backoff(3, salt) != r.Backoff(3, salt+1) {
			same = false
		}
	}
	if same {
		t.Error("jitter appears salt-independent")
	}
	if (Retry{}).Backoff(0, 1) != 0 {
		t.Error("zero policy should not sleep")
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep errored: %v", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Sleep(ctx2, time.Hour) }()
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}
