// Package faults is the typed error taxonomy and retry discipline of the
// fault-tolerant disk read path. The paper's candidate sets are computed
// from MBR bounds decoded out of disk pages, so an undetected corrupt page
// is not a crash bug but a wrong-answer bug: every storage failure must be
// detected, classified, and either healed (transient) or surfaced as a
// flagged degradation (persistent) — never swallowed.
//
// The taxonomy separates two regimes:
//
//   - Transient failures (ErrTransientIO, a recoverable ErrShortRead):
//     retried with capped exponential backoff and deterministic jitter,
//     honoring the caller's context during every sleep.
//   - Integrity failures (ErrChecksum, ErrTornPage, a persistent
//     ErrShortRead): never retried blindly — the pager performs exactly one
//     re-read to distinguish an in-flight write from stable corruption,
//     then quarantines the page. Quarantined data reports ErrUnavailable,
//     which the query engine turns into a flagged partial result instead of
//     a wrong answer.
//
// The package is imported by pager (which raises these errors), core
// (which degrades on ErrUnavailable) and server (which maps degradation to
// HTTP); it depends only on the standard library.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"time"
)

// Sentinel error classes, matched with errors.Is through any number of
// wrapping layers (PageError included).
var (
	// ErrChecksum: a page's stored CRC32C does not match its contents and
	// a re-read returned the same bytes — stable on-disk corruption.
	ErrChecksum = errors.New("faults: page checksum mismatch")
	// ErrTornPage: a page failed verification and a re-read returned
	// different bytes — a torn or in-flight write was observed.
	ErrTornPage = errors.New("faults: torn page")
	// ErrShortRead: the storage returned fewer bytes than a full page.
	ErrShortRead = errors.New("faults: short page read")
	// ErrTransientIO: an I/O error of a class worth retrying (EIO, EINTR,
	// EAGAIN and friends).
	ErrTransientIO = errors.New("faults: transient I/O error")
	// ErrUnavailable: the data is quarantined or otherwise unreadable; the
	// caller should degrade (skip the subtree and flag the result), not
	// abort. Every quarantining PageError matches it.
	ErrUnavailable = errors.New("faults: data unavailable")
)

// Class partitions raw I/O errors for the retry loop.
type Class int

const (
	// ClassPermanent: not worth retrying (bad descriptor, closed file,
	// permission, out-of-range...).
	ClassPermanent Class = iota
	// ClassTransient: retry with backoff.
	ClassTransient
	// ClassShortRead: the read stopped early; one immediate re-read
	// distinguishes a racing append/truncation from stable damage.
	ClassShortRead
)

// Classify maps a raw error from the storage layer to its retry class.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassPermanent
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF), errors.Is(err, ErrShortRead):
		return ClassShortRead
	case errors.Is(err, ErrTransientIO),
		errors.Is(err, syscall.EIO),
		errors.Is(err, syscall.EINTR),
		errors.Is(err, syscall.EAGAIN),
		errors.Is(err, syscall.EBUSY),
		errors.Is(err, syscall.ETIMEDOUT):
		return ClassTransient
	default:
		return ClassPermanent
	}
}

// PageError is a storage failure pinned to one page. It unwraps to its
// class sentinel (so errors.Is(err, ErrChecksum) etc. work) and, when the
// page was quarantined, additionally matches ErrUnavailable.
type PageError struct {
	Op   string // "read", "write", "verify"
	Page uint32
	Err  error
	// Quarantined marks the page as withdrawn from service; the error then
	// matches ErrUnavailable and callers should degrade instead of abort.
	Quarantined bool
}

// Error formats the failure with its page id.
func (e *PageError) Error() string {
	if e.Quarantined {
		return fmt.Sprintf("faults: %s page %d (quarantined): %v", e.Op, e.Page, e.Err)
	}
	return fmt.Sprintf("faults: %s page %d: %v", e.Op, e.Page, e.Err)
}

// Unwrap exposes the class sentinel to errors.Is/As.
func (e *PageError) Unwrap() error { return e.Err }

// Is lets a quarantining PageError match ErrUnavailable in addition to the
// wrapped class.
func (e *PageError) Is(target error) bool {
	return target == ErrUnavailable && e.Quarantined
}

// IsUnavailable reports whether err represents quarantined/unreadable data
// the caller should degrade around rather than abort on.
func IsUnavailable(err error) bool { return errors.Is(err, ErrUnavailable) }

// Stats are the cumulative fault counters of one page file, exposed
// through the pager and the server's health endpoints. All fields are
// monotonic.
type Stats struct {
	// LegacyReads counts pages read from a pre-checksum (format v0) file,
	// where verification was skipped — the counted warning of the
	// compatibility path.
	LegacyReads int64 `json:"legacy_reads"`
	// ChecksumFailures counts verification mismatches (first reads;
	// includes those later healed by the re-read).
	ChecksumFailures int64 `json:"checksum_failures"`
	// TornPages counts re-reads that returned different bytes.
	TornPages int64 `json:"torn_pages"`
	// ShortReads counts reads that returned fewer bytes than a page.
	ShortReads int64 `json:"short_reads"`
	// TransientRetries counts backoff retries of transient I/O errors.
	TransientRetries int64 `json:"transient_retries"`
	// RecoveredReads counts reads that failed at least once and then
	// succeeded (transient healed, or a torn write that settled).
	RecoveredReads int64 `json:"recovered_reads"`
	// QuarantinedPages is the number of pages withdrawn from service.
	QuarantinedPages int64 `json:"quarantined_pages"`
}

// Retry is a capped exponential backoff policy. The zero value disables
// retries; DefaultRetry is the pager's default.
type Retry struct {
	// Max is the number of retries after the initial attempt.
	Max int
	// Base is the backoff before the first retry; each further retry
	// doubles it up to Cap.
	Base time.Duration
	// Cap bounds a single backoff.
	Cap time.Duration
}

// DefaultRetry is tuned for page-sized reads: sub-millisecond first
// backoff, three retries, capped at 5ms so a failing device cannot stall a
// query for long.
var DefaultRetry = Retry{Max: 3, Base: 200 * time.Microsecond, Cap: 5 * time.Millisecond}

// Backoff returns the sleep before retry attempt (0-based), jittered
// deterministically from salt — no global rand, so fault-injection runs
// are reproducible. The result lies in [d/2, d] for d = min(Base<<attempt,
// Cap).
func (r Retry) Backoff(attempt int, salt uint64) time.Duration {
	if r.Base <= 0 {
		return 0
	}
	d := r.Base
	for i := 0; i < attempt && d < r.Cap; i++ {
		d <<= 1
	}
	if r.Cap > 0 && d > r.Cap {
		d = r.Cap
	}
	h := splitmix64(salt ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + h%(half+1))
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash for
// deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sleep blocks for d or until ctx is done, whichever comes first, and
// returns ctx.Err() in the latter case. It is the ctx-aware sleep every
// retry loop must use in place of time.Sleep (enforced by nnclint's
// ctx-flow check).
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
