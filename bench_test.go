package spatialdom

// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md §3 and EXPERIMENTS.md). Dataset sizes are scaled down from the
// paper's 100k×40 grid so the whole suite runs in minutes on one core; the
// comparison SHAPES between operators are the reproduction target. Custom
// metrics report the figure's y-axis: candidates/query for the
// effectiveness figures (10, 11), wall time for the efficiency figures
// (12, 13, and ns/op everywhere), and instance comparisons for the
// Appendix C ablation (16).
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=Fig10 -benchtime=5x

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialdom/internal/core"
	"spatialdom/internal/datagen"
	"spatialdom/internal/harness"
)

// benchSpec is the scaled-down Table 2 defaults used by the benchmarks.
const (
	benchN       = 600
	benchMd      = 8
	benchHd      = 400.0
	benchMq      = 6
	benchHq      = 200.0
	benchQueries = 4
	benchSeed    = 20150531 // SIGMOD'15 opening day
)

type benchData struct {
	idx     *core.Index
	queries []*Object
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]benchData{}
)

// dataFor builds (and caches) a dataset + workload for a parameter set.
func dataFor(b *testing.B, key string, p datagen.Params, mq int, hq float64) benchData {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if d, ok := benchCache[key]; ok {
		return d
	}
	ds := datagen.Generate(p)
	idx, err := core.NewIndex(ds.Objects)
	if err != nil {
		b.Fatal(err)
	}
	d := benchData{idx: idx, queries: ds.Queries(benchQueries, mq, hq, benchSeed+7777)}
	benchCache[key] = d
	return d
}

func defaultParams(centers datagen.CenterDist, n int) datagen.Params {
	return datagen.Params{N: n, M: benchMd, EdgeLen: benchHd, Centers: centers, Seed: benchSeed}
}

// runSearches runs the workload round-robin for b.N iterations and reports
// the average candidate count.
func runSearches(b *testing.B, d benchData, op Operator, cfg FilterConfig) {
	b.Helper()
	var candidates, comparisons float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := d.queries[i%len(d.queries)]
		res := d.idx.SearchOpts(q, op, core.SearchOptions{Filters: cfg})
		candidates += float64(len(res.Candidates))
		comparisons += float64(res.Stats.InstanceComparisons)
	}
	b.ReportMetric(candidates/float64(b.N), "candidates/query")
	b.ReportMetric(comparisons/float64(b.N), "comparisons/query")
}

// figure10Datasets mirrors the Figure 10/12 dataset suite.
func figure10Datasets() []struct {
	label string
	p     datagen.Params
} {
	return []struct {
		label string
		p     datagen.Params
	}{
		{"A-N", defaultParams(datagen.AntiCorrelated, benchN)},
		{"E-N", defaultParams(datagen.Independent, benchN)},
		{"HOUSE", defaultParams(datagen.HouseLike, benchN)},
		{"CA", func() datagen.Params {
			p := defaultParams(datagen.Clustered, benchN/2)
			p.Clusters = 8
			return p
		}()},
		{"NBA", defaultParams(datagen.NBALike, benchN/4)},
		{"GW", func() datagen.Params {
			p := defaultParams(datagen.GWLike, benchN)
			p.Clusters = 40
			return p
		}()},
		{"USA", func() datagen.Params {
			p := defaultParams(datagen.Clustered, benchN*2)
			p.Clusters = 60
			return p
		}()},
	}
}

// BenchmarkFig10 — candidate size per dataset per operator (Figure 10).
// The candidates/query metric is the figure's y-axis.
func BenchmarkFig10(b *testing.B) {
	for _, ds := range figure10Datasets() {
		for _, op := range Operators {
			b.Run(fmt.Sprintf("%s/%s", ds.label, op), func(b *testing.B) {
				d := dataFor(b, ds.label, ds.p, benchMq, benchHq)
				runSearches(b, d, op, AllFilters)
			})
		}
	}
}

// BenchmarkFig12 — query response time per dataset per operator
// (Figure 12); ns/op is the figure's y-axis.
func BenchmarkFig12(b *testing.B) {
	for _, ds := range figure10Datasets() {
		for _, op := range Operators {
			b.Run(fmt.Sprintf("%s/%s", ds.label, op), func(b *testing.B) {
				d := dataFor(b, ds.label, ds.p, benchMq, benchHq)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.idx.Search(d.queries[i%len(d.queries)], op)
				}
			})
		}
	}
}

// sweepCases enumerates the Figure 11/13 parameter sweeps (a–f).
func sweepCases() []struct {
	sub   string
	label string
	p     datagen.Params
	mq    int
	hq    float64
} {
	type cse = struct {
		sub   string
		label string
		p     datagen.Params
		mq    int
		hq    float64
	}
	var out []cse
	add := func(sub, label string, p datagen.Params, mq int, hq float64) {
		out = append(out, cse{sub, label, p, mq, hq})
	}
	base := defaultParams(datagen.AntiCorrelated, benchN)
	for _, v := range []int{4, 8, 16} { // (a) m_d
		p := base
		p.M = v
		add("a_md", fmt.Sprint(v), p, benchMq, benchHq)
	}
	for _, v := range []float64{100, 300, 500} { // (b) h_d
		p := base
		p.EdgeLen = v
		add("b_hd", fmt.Sprint(v), p, benchMq, benchHq)
	}
	for _, v := range []int{3, 6, 12} { // (c) m_q
		add("c_mq", fmt.Sprint(v), base, v, benchHq)
	}
	for _, v := range []float64{100, 300, 500} { // (d) h_q
		add("d_hq", fmt.Sprint(v), base, benchMq, v)
	}
	for _, v := range []int{300, 600, 1200} { // (e) n, USA-like
		p := defaultParams(datagen.Clustered, v)
		p.Clusters = 60
		add("e_n", fmt.Sprint(v), p, benchMq, benchHq)
	}
	for _, v := range []int{2, 3, 4, 5} { // (f) d
		p := base
		p.Dim = v
		add("f_d", fmt.Sprint(v), p, benchMq, benchHq)
	}
	return out
}

// BenchmarkFig11 — candidate size vs each Table 2 parameter (Figure 11,
// subfigures a–f); candidates/query is the y-axis.
func BenchmarkFig11(b *testing.B) {
	for _, c := range sweepCases() {
		for _, op := range Operators {
			b.Run(fmt.Sprintf("%s=%s/%s", c.sub, c.label, op), func(b *testing.B) {
				key := fmt.Sprintf("sweep/%s/%s/%d/%g", c.sub, c.label, c.mq, c.hq)
				d := dataFor(b, key, c.p, c.mq, c.hq)
				runSearches(b, d, op, AllFilters)
			})
		}
	}
}

// BenchmarkFig13 — response time vs each Table 2 parameter (Figure 13,
// subfigures a–f); ns/op is the y-axis.
func BenchmarkFig13(b *testing.B) {
	for _, c := range sweepCases() {
		for _, op := range Operators {
			b.Run(fmt.Sprintf("%s=%s/%s", c.sub, c.label, op), func(b *testing.B) {
				key := fmt.Sprintf("sweep/%s/%s/%d/%g", c.sub, c.label, c.mq, c.hq)
				d := dataFor(b, key, c.p, c.mq, c.hq)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.idx.Search(d.queries[i%len(d.queries)], op)
				}
			})
		}
	}
}

// BenchmarkFig14 — the progressive property under PSD (Figure 14): time to
// the first candidate and to half the candidates, as fractions of the full
// response time.
func BenchmarkFig14(b *testing.B) {
	p := defaultParams(datagen.Clustered, benchN*2)
	p.Clusters = 60
	d := dataFor(b, "fig14", p, benchMq, benchHq)
	var first, half, full float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := d.queries[i%len(d.queries)]
		var emits []time.Duration
		res := d.idx.SearchOpts(q, PSD, core.SearchOptions{
			Filters:     AllFilters,
			OnCandidate: func(c Candidate) { emits = append(emits, c.Elapsed) },
		})
		if len(emits) == 0 {
			continue
		}
		first += float64(emits[0]) / float64(res.Elapsed)
		half += float64(emits[(len(emits)-1)/2]) / float64(res.Elapsed)
		full++
	}
	if full > 0 {
		b.ReportMetric(first/full*100, "%time-to-first")
		b.ReportMetric(half/full*100, "%time-to-half")
	}
}

// BenchmarkFig16 — the Appendix C filtering ablation: average instance
// comparisons under each filter stack (BF, L, LP, LG, LGP, All) for the
// three proposed operators on HOUSE-like data.
func BenchmarkFig16(b *testing.B) {
	p := defaultParams(datagen.HouseLike, benchN/2)
	for _, op := range []Operator{SSD, SSSD, PSD} {
		for _, cfg := range harness.AblationConfigs() {
			b.Run(fmt.Sprintf("%s/%s", op, cfg.Label), func(b *testing.B) {
				d := dataFor(b, "fig16", p, benchMq, benchHq)
				runSearches(b, d, op, cfg.Cfg)
			})
		}
	}
}

// --- micro-benchmarks of the building blocks ---------------------------------

// BenchmarkDominanceCheck times a single pairwise dominance decision per
// operator with all filters enabled.
func BenchmarkDominanceCheck(b *testing.B) {
	ds := datagen.Generate(defaultParams(datagen.AntiCorrelated, 64))
	qs := ds.Queries(1, benchMq, benchHq, 3)
	for _, op := range Operators {
		b.Run(op.String(), func(b *testing.B) {
			checker := core.NewChecker(qs[0], op, AllFilters)
			objs := ds.Objects
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := objs[i%len(objs)]
				v := objs[(i*7+1)%len(objs)]
				if u == v {
					continue
				}
				checker.Dominates(u, v)
			}
		})
	}
}

// BenchmarkIndexBuild times global R-tree construction.
func BenchmarkIndexBuild(b *testing.B) {
	ds := datagen.Generate(defaultParams(datagen.AntiCorrelated, benchN))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewIndex(ds.Objects); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchK — cost of the k-skyband extension as k grows.
func BenchmarkSearchK(b *testing.B) {
	p := defaultParams(datagen.AntiCorrelated, benchN)
	d := dataFor(b, "A-N", p, benchMq, benchHq)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var candidates float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := d.idx.SearchK(d.queries[i%len(d.queries)], SSSD, k)
				candidates += float64(len(res.Candidates))
			}
			b.ReportMetric(candidates/float64(b.N), "candidates/query")
		})
	}
}

// BenchmarkMetric — dominance-search cost under each distance metric.
func BenchmarkMetric(b *testing.B) {
	p := defaultParams(datagen.AntiCorrelated, benchN)
	d := dataFor(b, "A-N", p, benchMq, benchHq)
	for _, m := range []Metric{Euclidean, Manhattan, Chebyshev} {
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.idx.SearchOpts(d.queries[i%len(d.queries)], SSSD,
					core.SearchOptions{Filters: AllFilters, Metric: m})
			}
		})
	}
}

// BenchmarkEMD times one Earth Mover's distance evaluation.
func BenchmarkEMD(b *testing.B) {
	ds := datagen.Generate(defaultParams(datagen.AntiCorrelated, 8))
	qs := ds.Queries(1, benchMq, benchHq, 3)
	f := EMDFunc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Scores(ds.Objects[:1], qs[0])
	}
}

// --- parallel search benchmarks ----------------------------------------------

// parallelWorkers are the sub-benchmark worker counts for the parallel
// search benchmarks; speedup at w>1 requires GOMAXPROCS >= w.
var parallelWorkers = []int{1, 2, 4, 8}

// runParallelSearches distributes b.N searches over w goroutines via a
// shared atomic work index — the same fan-out shape as SearchParallel, but
// sized by the benchmark framework.
func runParallelSearches(b *testing.B, s KSearcher, queries []*Object, w int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				if _, err := s.SearchKCtx(context.Background(), queries[i%len(queries)], PSD, 1,
					core.SearchOptions{Filters: AllFilters}); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkParallelSearchMem — PSD search throughput on the in-memory
// index as the goroutine count grows.
func BenchmarkParallelSearchMem(b *testing.B) {
	d := dataFor(b, "A-N", defaultParams(datagen.AntiCorrelated, benchN), benchMq, benchHq)
	for _, w := range parallelWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runParallelSearches(b, d.idx, d.queries, w)
		})
	}
}

// BenchmarkParallelSearchDisk — PSD search throughput on the disk index
// (sharded buffer pool, per-search leases) as the goroutine count grows.
// The index is built once outside the timer.
func BenchmarkParallelSearchDisk(b *testing.B) {
	ds := datagen.Generate(defaultParams(datagen.AntiCorrelated, benchN))
	queries := ds.Queries(benchQueries, benchMq, benchHq, benchSeed+7777)
	disk, err := BuildDiskIndex(filepath.Join(b.TempDir(), "bench.pg"), ds.Objects, 1024)
	if err != nil {
		b.Fatal(err)
	}
	defer disk.Close()
	for _, w := range parallelWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runParallelSearches(b, disk, queries, w)
		})
	}
}

// BenchmarkSearchParallelBatchMem — the real batch API (work-stealing
// queue, per-worker pinned scratch) rather than the hand-rolled fan-out
// above. One op = one 64-query batch, so ns/op is per-batch and allocs/op
// shows the whole batch overhead: queue + scratch pinning + result slice.
func BenchmarkSearchParallelBatchMem(b *testing.B) {
	d := dataFor(b, "A-N", defaultParams(datagen.AntiCorrelated, benchN), benchMq, benchHq)
	batch := make([]*Object, 64)
	for i := range batch {
		batch[i] = d.queries[i%len(d.queries)]
	}
	for _, w := range parallelWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SearchParallel(context.Background(), d.idx, batch, PSD, 1,
					core.SearchOptions{Filters: AllFilters}, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchRunParallelMem — per-query latency under the testing
// package's own RunParallel driver. SetParallelism pins the goroutine
// fan-out (per the bench-hygiene lint rule) so the contention level is
// the same on a laptop and a CI runner.
func BenchmarkSearchRunParallelMem(b *testing.B) {
	d := dataFor(b, "A-N", defaultParams(datagen.AntiCorrelated, benchN), benchMq, benchHq)
	b.ReportAllocs()
	b.SetParallelism(2)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1)) - 1
			q := d.queries[i%len(d.queries)]
			if _, err := d.idx.SearchKCtx(context.Background(), q, PSD, 1,
				core.SearchOptions{Filters: AllFilters}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
