package spatialdom_test

import (
	"fmt"
	"log"

	"spatialdom"
)

// Example shows the complete happy path: build objects, index them, and
// ask for the NN candidates that cover every N1∪N2∪N3 function.
func Example() {
	near, err := spatialdom.NewObject(1, [][]float64{{1, 1}, {2, 2}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	far, err := spatialdom.NewObject(2, [][]float64{{50, 50}, {51, 51}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	query, err := spatialdom.NewObject(0, [][]float64{{0, 0}, {1, 0}}, nil)
	if err != nil {
		log.Fatal(err)
	}

	idx, err := spatialdom.NewIndex([]*spatialdom.Object{near, far})
	if err != nil {
		log.Fatal(err)
	}
	res := idx.Search(query, spatialdom.PSD)
	fmt.Println(res.IDs())
	// Output: [1]
}

// ExampleNewObject demonstrates multi-valued objects: weights are
// normalized to probabilities.
func ExampleNewObject() {
	o, err := spatialdom.NewObject(7, [][]float64{{0, 0}, {3, 4}}, []float64{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(o.Len(), o.Dim(), o.Prob(0), o.Prob(1))
	// Output: 2 2 0.25 0.75
}

// ExampleNewChecker decides a single pairwise dominance.
func ExampleNewChecker() {
	q, _ := spatialdom.NewObject(0, [][]float64{{0}}, nil)
	u, _ := spatialdom.NewObject(1, [][]float64{{1}, {2}}, nil)
	v, _ := spatialdom.NewObject(2, [][]float64{{5}, {6}}, nil)

	checker := spatialdom.NewChecker(q, spatialdom.SSD, spatialdom.AllFilters)
	fmt.Println(checker.Dominates(u, v), checker.Dominates(v, u))
	// Output: true false
}

// ExampleNearestNeighbor scores objects under a specific NN function.
func ExampleNearestNeighbor() {
	q, _ := spatialdom.NewObject(0, [][]float64{{0, 0}}, nil)
	a, _ := spatialdom.NewObject(1, [][]float64{{3, 4}}, nil)
	b, _ := spatialdom.NewObject(2, [][]float64{{6, 8}}, nil)

	nn := spatialdom.NearestNeighbor([]*spatialdom.Object{a, b}, q, spatialdom.ExpectedDistFunc())
	fmt.Println(nn.ID())
	// Output: 1
}

// ExampleQuantileDistFunc: the φ-quantile of the pairwise distance
// distribution is itself an N1 function.
func ExampleQuantileDistFunc() {
	q, _ := spatialdom.NewObject(0, [][]float64{{0}}, nil)
	u, _ := spatialdom.NewObject(1, [][]float64{{1}, {2}, {3}, {4}}, nil)

	median := spatialdom.QuantileDistFunc(0.5)
	scores := median.Scores([]*spatialdom.Object{u}, q)
	fmt.Println(scores[0])
	// Output: 2
}

// ExampleIndex_SearchK asks for the 2-NN candidates: every object
// dominated by fewer than two others, guaranteed to contain the top-2
// under every covered function.
func ExampleIndex_SearchK() {
	q, _ := spatialdom.NewObject(0, [][]float64{{0}}, nil)
	a, _ := spatialdom.NewObject(1, [][]float64{{1}}, nil)
	b, _ := spatialdom.NewObject(2, [][]float64{{2}}, nil)
	c, _ := spatialdom.NewObject(3, [][]float64{{3}}, nil)

	idx, _ := spatialdom.NewIndex([]*spatialdom.Object{a, b, c})
	fmt.Println(idx.Search(q, spatialdom.SSD).IDs())
	fmt.Println(idx.SearchK(q, spatialdom.SSD, 2).IDs())
	// Output:
	// [1]
	// [1 2]
}

// ExampleSpatialSkyline computes a classic spatial skyline — the
// single-instance special case of the dominance framework.
func ExampleSpatialSkyline() {
	points := [][]float64{{1, 0}, {2, 0}, {0, 2}}
	query := [][]float64{{0, 0}, {0, 1}}
	fmt.Println(spatialdom.SpatialSkyline(points, query))
	// Output: [0 2]
}

// ExampleManhattan runs the search under the L1 metric.
func ExampleManhattan() {
	q, _ := spatialdom.NewObject(0, [][]float64{{0, 0}}, nil)
	a, _ := spatialdom.NewObject(1, [][]float64{{1, 1}}, nil)
	b, _ := spatialdom.NewObject(2, [][]float64{{9, 9}}, nil)

	idx, _ := spatialdom.NewIndex([]*spatialdom.Object{a, b})
	res := idx.SearchOpts(q, spatialdom.SSSD, spatialdom.SearchOptions{
		Filters: spatialdom.AllFilters,
		Metric:  spatialdom.Manhattan,
	})
	fmt.Println(res.IDs())
	// Output: [1]
}
