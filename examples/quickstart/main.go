// Quickstart: build a handful of multi-instance objects, index them, and
// compute nearest-neighbor candidates under each spatial dominance
// operator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spatialdom"
)

func main() {
	// Three objects, each a cloud of weighted instances (e.g. possible
	// locations of a moving user). Weights are normalized automatically.
	alice, err := spatialdom.NewObject(1, [][]float64{
		{1.0, 1.0}, {1.5, 0.5}, {2.0, 1.5},
	}, []float64{2, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	alice.SetLabel("alice")

	bob, err := spatialdom.NewObject(2, [][]float64{
		{4.0, 0.0}, {4.5, 1.0},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	bob.SetLabel("bob")

	carol, err := spatialdom.NewObject(3, [][]float64{
		{9.0, 9.0}, {10.0, 8.5}, {9.5, 9.5},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	carol.SetLabel("carol")

	// The query is itself multi-instance: say, an imprecise GPS fix.
	query, err := spatialdom.NewObject(0, [][]float64{
		{0.0, 0.0}, {0.5, 0.5},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	idx, err := spatialdom.NewIndex([]*spatialdom.Object{alice, bob, carol})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate sets nest along the cover chain: a stronger operator
	// covers more NN functions but keeps more candidates.
	fmt.Println("NN candidates per operator (cover chain SSD ⊆ SSSD ⊆ PSD ⊆ FSD ⊆ F+SD):")
	for _, op := range spatialdom.Operators {
		res := idx.Search(query, op)
		names := make([]string, 0, len(res.Candidates))
		for _, c := range res.Candidates {
			names = append(names, c.Object.Label())
		}
		fmt.Printf("  %-5v -> %v\n", op, names)
	}

	// Pairwise dominance can also be checked directly.
	checker := spatialdom.NewChecker(query, spatialdom.PSD, spatialdom.AllFilters)
	fmt.Printf("\nP-SD(alice, carol | query) = %v\n", checker.Dominates(alice, carol))
	fmt.Printf("P-SD(carol, alice | query) = %v\n", checker.Dominates(carol, alice))

	// And individual NN functions still work when you know which one you
	// want — the candidates above are guaranteed to contain each answer.
	objs := []*spatialdom.Object{alice, bob, carol}
	for _, f := range []spatialdom.NNFunc{
		spatialdom.ExpectedDistFunc(),
		spatialdom.MaxDistFunc(),
		spatialdom.EMDFunc(),
	} {
		fmt.Printf("NN under %-9s = %s\n", f.Name(), spatialdom.NearestNeighbor(objs, query, f).Label())
	}
}
