// Tradeoff: the Figure 5 story end to end. On one dataset and one query,
// the example shows (i) the candidate sets of all five operators nest
// along the cover chain, (ii) the nearest neighbor of EVERY implemented
// NN function lies inside the candidate set of every operator covering
// its family, and (iii) what each extra candidate buys in function
// coverage — the size/coverage trade-off the paper advocates.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"spatialdom"
	"spatialdom/internal/datagen"
	"spatialdom/internal/nnfunc"
)

func main() {
	ds := datagen.Generate(datagen.Params{
		N: 400, M: 8, EdgeLen: 500,
		Centers: datagen.AntiCorrelated, Seed: 11,
	})
	idx, err := spatialdom.NewIndex(ds.Objects)
	if err != nil {
		log.Fatal(err)
	}
	query := ds.Queries(1, 6, 250, 5)[0]

	// (i) Nesting along the cover chain.
	sets := map[spatialdom.Operator]map[int]bool{}
	fmt.Println("candidate sets (cover chain):")
	var prev map[int]bool
	for _, op := range spatialdom.Operators {
		res := idx.Search(query, op)
		set := map[int]bool{}
		for _, id := range res.IDs() {
			set[id] = true
		}
		sets[op] = set
		fmt.Printf("  %-5v %3d candidates\n", op, len(set))
		if prev != nil {
			for id := range prev {
				if !set[id] {
					log.Fatalf("BUG: nesting violated at %v (object %d)", op, id)
				}
			}
		}
		prev = set
	}
	fmt.Println("  nesting SSD ⊆ SSSD ⊆ PSD ⊆ FSD ⊆ F+SD verified ✓")

	// (ii) Every function's NN is covered by the right operators.
	coverage := map[nnfunc.Family][]spatialdom.Operator{
		nnfunc.N1: {spatialdom.SSD, spatialdom.SSSD, spatialdom.PSD, spatialdom.FSD, spatialdom.FPlusSD},
		nnfunc.N2: {spatialdom.SSSD, spatialdom.PSD, spatialdom.FSD, spatialdom.FPlusSD},
		nnfunc.N3: {spatialdom.PSD, spatialdom.FSD, spatialdom.FPlusSD},
	}
	fmt.Println("\nper-function nearest neighbors and the operators whose candidates contain them:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  family\tfunction\tNN\tcontained in")
	objs := ds.Objects
	// N2 functions are quadratic in n; score them over the 150 closest
	// objects (every farther object is dominated under every family).
	n2objs := objs
	if len(n2objs) > 150 {
		n2objs = nearest(objs, query, 150)
	}
	for _, fam := range []nnfunc.Family{nnfunc.N1, nnfunc.N2, nnfunc.N3} {
		for _, f := range nnfunc.AllSuites()[fam] {
			pool := objs
			if fam == nnfunc.N2 {
				pool = n2objs
			}
			nn := nnfunc.NN(pool, query, f)
			var inside []string
			for _, op := range coverage[fam] {
				if sets[op][nn.ID()] {
					inside = append(inside, op.String())
				} else {
					log.Fatalf("BUG: NN under %s missing from NNC(%v)", f.Name(), op)
				}
			}
			fmt.Fprintf(tw, "  %v\t%s\t%d\t%v\n", fam, f.Name(), nn.ID(), inside)
		}
	}
	tw.Flush()

	// (iii) The trade-off in one line per operator.
	fmt.Println("\nthe trade-off:")
	fmt.Printf("  SSD : smallest set, safe for N1 only          (%d candidates)\n", len(sets[spatialdom.SSD]))
	fmt.Printf("  SSSD: + possible-world functions (N2)         (%d candidates)\n", len(sets[spatialdom.SSSD]))
	fmt.Printf("  PSD : + selected-pairs functions (N3, EMD…)   (%d candidates)\n", len(sets[spatialdom.PSD]))
	fmt.Printf("  FSD : same coverage as PSD, redundant extras  (%d candidates)\n", len(sets[spatialdom.FSD]))
	fmt.Printf("  F+SD: MBR-only baseline, most redundant       (%d candidates)\n", len(sets[spatialdom.FPlusSD]))
}

// nearest returns the k objects with the smallest min pair distance to q.
func nearest(objs []*spatialdom.Object, q *spatialdom.Object, k int) []*spatialdom.Object {
	type od struct {
		o *spatialdom.Object
		d float64
	}
	all := make([]od, len(objs))
	for i, o := range objs {
		best := -1.0
		for j := 0; j < q.Len(); j++ {
			if d := o.MinDist(q.Instance(j)); best < 0 || d < best {
				best = d
			}
		}
		all[i] = od{o, best}
	}
	for i := 0; i < k && i < len(all); i++ {
		min := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d < all[min].d {
				min = j
			}
		}
		all[i], all[min] = all[min], all[i]
	}
	if len(all) > k {
		all = all[:k]
	}
	out := make([]*spatialdom.Object, len(all))
	for i, x := range all {
		out[i] = x.o
	}
	return out
}
