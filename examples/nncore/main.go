// NNcore: why the paper rejects the prior candidate definition. The
// NN-core of Yuen et al. (the paper's reference [36]) keeps only objects
// that probabilistically "supersede" everything else — and can therefore
// evict the true nearest neighbor of perfectly common NN functions. This
// example reconstructs Figure 1 of the paper: the NN-core is {A}, yet B is
// the nearest neighbor under expected distance and C under max distance.
// The paper's S-SD candidates keep all three.
//
//	go run ./examples/nncore
package main

import (
	"fmt"
	"log"

	"spatialdom"
	"spatialdom/internal/nncore"
	"spatialdom/internal/uncertain"
)

func main() {
	// Figure 1 on a line: two instances per object with probabilities
	// 0.6 / 0.4, a single-instance query at the origin.
	q, _ := spatialdom.NewObject(0, [][]float64{{0}}, nil)
	a, _ := spatialdom.NewObject(1, [][]float64{{1}, {100}}, []float64{0.6, 0.4})
	b, _ := spatialdom.NewObject(2, [][]float64{{2}, {90}}, []float64{0.6, 0.4})
	c, _ := spatialdom.NewObject(3, [][]float64{{3}, {89}}, []float64{0.6, 0.4})
	a.SetLabel("A")
	b.SetLabel("B")
	c.SetLabel("C")
	objs := []*spatialdom.Object{a, b, c}

	fmt.Println("pairwise supersede probabilities (Pr[row closer than column]):")
	for _, u := range objs {
		for _, v := range objs {
			if u == v {
				continue
			}
			fmt.Printf("  Pr(%s beats %s) = %.2f\n", u.Label(), v.Label(), nncore.SupersedeProb(u, v, q))
		}
	}

	core := nncore.Core(objs, q)
	fmt.Printf("\nNN-core (Yuen et al.): %v\n", labels(core))

	fmt.Println("\nbut the per-function nearest neighbors are:")
	for _, f := range []spatialdom.NNFunc{
		spatialdom.MinDistFunc(),
		spatialdom.ExpectedDistFunc(),
		spatialdom.MaxDistFunc(),
	} {
		nn := spatialdom.NearestNeighbor(objs, q, f)
		fmt.Printf("  %-9s -> %s\n", f.Name(), nn.Label())
	}

	idx, err := spatialdom.NewIndex(objs)
	if err != nil {
		log.Fatal(err)
	}
	res := idx.Search(q, spatialdom.SSD)
	fmt.Printf("\nS-SD candidates (optimal for N1): %v\n", labelIDs(res))
	fmt.Println("→ the NN-core dropped B and C even though each is the NN under a")
	fmt.Println("  popular N1 function; the S-SD candidate set keeps exactly the")
	fmt.Println("  objects that can win, which is the paper's Remark 1.")
}

func labels(objs []*uncertain.Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Label()
	}
	return out
}

func labelIDs(res *spatialdom.Result) []string {
	out := make([]string, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = c.Object.Label()
	}
	return out
}
