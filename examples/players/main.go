// Players: multi-valued objects in the style of the paper's NBA use case.
// Each player is described by per-game stat lines (points, assists,
// rebounds); the query is a target stat profile. Different NN functions
// disagree about the "most similar player" — consistency beats peak
// performance under expected distance, peaks win under min distance, and
// EMD weighs the whole distribution — which is exactly why a user without
// a fixed function in mind wants the NN candidate set.
//
//	go run ./examples/players
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"spatialdom"
)

// player generates per-game stat lines around a mean profile with a
// player-specific variance (streaky vs consistent).
func player(id int, name string, games int, mean [3]float64, spread float64, rng *rand.Rand) *spatialdom.Object {
	rows := make([][]float64, games)
	for g := range rows {
		rows[g] = []float64{
			clamp(mean[0] + rng.NormFloat64()*spread*mean[0]),
			clamp(mean[1] + rng.NormFloat64()*spread*mean[1]),
			clamp(mean[2] + rng.NormFloat64()*spread*mean[2]),
		}
	}
	o, err := spatialdom.NewObject(id, rows, nil) // equal game weights
	if err != nil {
		log.Fatal(err)
	}
	return o.SetLabel(name)
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func main() {
	rng := rand.New(rand.NewSource(42))
	players := []*spatialdom.Object{
		player(1, "steady-sam", 40, [3]float64{23, 4, 8}, 0.06, rng),
		player(2, "streaky-stella", 40, [3]float64{19, 6, 6}, 0.50, rng),
		player(3, "playmaker-pat", 40, [3]float64{14, 11, 4}, 0.20, rng),
		player(4, "glassman-gus", 40, [3]float64{12, 3, 13}, 0.20, rng),
		player(5, "rookie-rae", 25, [3]float64{17, 6, 5}, 0.35, rng),
		player(6, "bench-bo", 30, [3]float64{6, 2, 2}, 0.30, rng),
	}

	// Query: "find players like this 19/6/6 profile" — itself given as a
	// handful of representative stat lines.
	query, err := spatialdom.NewObject(0, [][]float64{
		{19, 6, 6}, {21, 5, 7}, {17, 7, 5},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Most similar player according to each NN function:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  function\tfamily\tnearest player")
	funcs := []spatialdom.NNFunc{
		spatialdom.MinDistFunc(),
		spatialdom.MaxDistFunc(),
		spatialdom.ExpectedDistFunc(),
		spatialdom.QuantileDistFunc(0.5),
		spatialdom.NNProbFunc(),
		spatialdom.ExpectedRankFunc(),
		spatialdom.HausdorffFunc(),
		spatialdom.EMDFunc(),
	}
	picked := map[string]bool{}
	for _, f := range funcs {
		nn := spatialdom.NearestNeighbor(players, query, f)
		picked[nn.Label()] = true
		fmt.Fprintf(tw, "  %s\t%v\t%s\n", f.Name(), f.Family(), nn.Label())
	}
	tw.Flush()

	idx, err := spatialdom.NewIndex(players)
	if err != nil {
		log.Fatal(err)
	}
	res := idx.Search(query, spatialdom.PSD)
	inSet := map[string]bool{}
	var names []string
	for _, c := range res.Candidates {
		inSet[c.Object.Label()] = true
		names = append(names, c.Object.Label())
	}
	fmt.Printf("\nNN candidates under P-SD (optimal for N1∪N2∪N3): %v\n", names)

	for name := range picked {
		if !inSet[name] {
			log.Fatalf("BUG: %s is an NN under some function but missing from the candidates", name)
		}
	}
	fmt.Println("every per-function nearest neighbor is inside the candidate set ✓")

	// The baseline keeps more players around without covering any more
	// functions.
	fsd := idx.Search(query, spatialdom.FPlusSD)
	fmt.Printf("F+SD baseline would keep %d candidates instead of %d.\n",
		len(fsd.Candidates), len(res.Candidates))
}
