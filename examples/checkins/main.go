// Checkins: location-uncertain users in the style of the GoWalla dataset.
// Each user is a cloud of 2-d check-ins around a few personal hotspots;
// the query is an imprecise region of interest. The example streams NN
// candidates progressively — Algorithm 1 emits each candidate the moment
// it is proven undominated, so a UI can render results while the search
// is still running (Figure 14's progressive property).
//
//	go run ./examples/checkins
package main

import (
	"fmt"
	"log"

	"spatialdom"
	"spatialdom/internal/datagen"
)

func main() {
	// 800 users whose check-ins cluster around shared city hotspots —
	// heavily overlapping objects, the hard case for candidate search.
	ds := datagen.Generate(datagen.Params{
		N:        800,
		M:        25,
		Centers:  datagen.GWLike,
		Clusters: 30,
		Seed:     7,
	})
	idx, err := spatialdom.NewIndex(ds.Objects)
	if err != nil {
		log.Fatal(err)
	}
	// A query region given as a handful of probe points.
	query := ds.Queries(1, 10, 300, 99)[0]

	fmt.Printf("searching %d users for NN candidates near the query region...\n\n", idx.Len())

	// Progressive consumption: the callback fires as soon as a candidate
	// is proven; the final result arrives when the traversal completes.
	count := 0
	res := idx.SearchOpts(query, spatialdom.SSSD, spatialdom.SearchOptions{
		Filters: spatialdom.AllFilters,
		OnCandidate: func(c spatialdom.Candidate) {
			count++
			fmt.Printf("  +%8v  candidate %2d: user %4d (closest check-in %.0fm away)\n",
				c.Elapsed.Round(0), c.Rank+1, c.Object.ID(), c.MinDist)
		},
	})
	fmt.Printf("\nsearch finished in %v: %d candidates out of %d users (%.1f%%)\n",
		res.Elapsed.Round(0), len(res.Candidates), idx.Len(),
		100*float64(len(res.Candidates))/float64(idx.Len()))
	if count != len(res.Candidates) {
		log.Fatalf("BUG: callback fired %d times for %d candidates", count, len(res.Candidates))
	}

	// The trade-off knob: SS-SD covers the possible-world functions most
	// location apps use (NN probability, expected rank); S-SD would be
	// smaller but only safe for all-pairs aggregates; P-SD adds EMD-style
	// functions at the cost of more candidates.
	fmt.Println("\ncandidate counts per operator on the same query:")
	for _, op := range spatialdom.Operators {
		r := idx.Search(query, op)
		fmt.Printf("  %-5v %4d candidates  (%v)\n", op, len(r.Candidates), r.Elapsed.Round(0))
	}
}
