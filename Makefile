# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover figures examples clean check

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: vet + build + race tests + a one-shot Figure 12
# benchmark smoke so the engine's hot path stays exercised.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -run='^$$' -bench=Fig12 -benchtime=1x .

bench:
	$(GO) test -bench=. -benchmem .

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

figures:
	$(GO) run ./cmd/nncbench -figure=all -scale=small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/players
	$(GO) run ./examples/checkins
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/nncore

clean:
	rm -f cover.out test_output.txt bench_output.txt

verify:
	$(GO) run ./cmd/nncbench -verify -scale=small

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/dataio
	$(GO) test -fuzz=FuzzOpen -fuzztime=30s ./internal/pager
