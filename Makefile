# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet lint fmt-check bench bench-baseline bench-compare hotpath cover figures examples clean check fuzz fuzz-smoke faults wal parallel bench-compare-parallel load load-baseline conformance cluster

# The hot-path benchmark set and flags; bench-baseline and bench-compare
# must agree so the committed BENCH_baseline.txt stays comparable. The
# sub-microsecond DominanceCheck set needs far more iterations than the
# millisecond Fig12 workloads to escape warmup noise.
BENCH_FIG_FLAGS = -run='^$$' -bench=Fig12 -benchtime=100x -count=3 -benchmem
BENCH_DOM_FLAGS = -run='^$$' -bench=DominanceCheck -benchtime=5000x -count=3 -benchmem

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs nnclint, the repo's own static-analysis suite: hotpath-alloc,
# scratch-escape, lock-balance, ctx-flow, no-reflect-sort, bench-hygiene,
# wal-order, snapshot-lifecycle, goroutine-lifecycle, error-taxonomy and
# atomic-publish, all from one type-checked pass over the module
# (internal/lint included — the linter lints itself). Zero findings is
# the bar; suppress only with an explained //nnc:allow.
lint:
	$(GO) run ./cmd/nnclint -root .

# fmt-check fails if any file needs gofmt (testdata corpora included).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: formatting + vet + build + nnclint + race tests +
# a one-shot Figure 12 benchmark smoke so the engine's hot path stays
# exercised, plus a short fuzz pass over the on-disk decoders.
check: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/nnclint -root .
	$(GO) test -race ./...
	$(GO) test -run='^$$' -bench=Fig12 -benchtime=1x .
	$(MAKE) fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem .

# bench-baseline refreshes the committed perf baseline; run it on the
# reference machine after an intentional perf change and commit the file.
bench-baseline:
	$(GO) test $(BENCH_FIG_FLAGS) . | tee BENCH_baseline.txt
	$(GO) test $(BENCH_DOM_FLAGS) . | tee -a BENCH_baseline.txt

# bench-compare re-runs the same set and diffs against the committed
# baseline. Informational by default (-gate=0): absolute ns/op is only
# comparable on the reference machine, but allocs/op is portable.
bench-compare:
	$(GO) test $(BENCH_FIG_FLAGS) . > bench_new.txt
	$(GO) test $(BENCH_DOM_FLAGS) . >> bench_new.txt
	$(GO) run ./cmd/benchdiff BENCH_baseline.txt bench_new.txt

# hotpath regenerates BENCH_hotpath.json (ns/op, allocs/op, QPS on
# Figure 12-style workloads, both backends, serial and parallel).
hotpath:
	$(GO) run ./cmd/nncbench -hotpath -scale=small

# parallel runs the worker sweep with the scaling gate armed: speedup,
# p95 and p99 under load must stay inside the thresholds (the gate
# self-disables on single-proc machines where scaling is unmeasurable).
# The sweep lands in a scratch artifact (the committed BENCH_parallel.json
# is refreshed deliberately via nncbench -parallel -force on the reference
# machine); mutex/block contention profiles land next to it.
parallel:
	$(GO) run ./cmd/nncbench -parallel -scale=small -gate -force -profiledir=. -out=bench_parallel_new.json

# bench-compare-parallel re-records the sweep to a scratch artifact and
# diffs it against the committed BENCH_parallel.json per backend and
# worker count (qps, p95, p99, speedup). Informational by default —
# absolute throughput is machine-bound; pass GATE=-gate=15 to fail on
# >15% regressions when comparing on the same machine.
bench-compare-parallel:
	$(GO) run ./cmd/nncbench -parallel -scale=small -force -out=bench_parallel_new.json
	$(GO) run ./cmd/benchdiff -parallel $(GATE) BENCH_parallel.json bench_parallel_new.json

# load runs the nncload serving-tier smoke with its relative gate armed
# (cached-hot QPS ≥ 3× uncached, bounded p99, zero errors — ratios within
# one run, so the gate holds on any machine), then diffs the fresh
# artifact against the committed BENCH_load.json. The committed artifact
# is refreshed deliberately via `make load-baseline`.
load:
	$(GO) run ./cmd/nncload -scale=small -gate -out=bench_load_new.json
	$(GO) run ./cmd/benchdiff -load $(GATE) BENCH_load.json bench_load_new.json

load-baseline:
	$(GO) run ./cmd/nncload -scale=small -gate -out=BENCH_load.json

# conformance runs the cache-invalidation conformance suite under the
# race detector: random inserts/deletes interleaved with cached queries,
# every served answer byte-equal to a fresh uncached search, on both the
# in-memory and WAL-backed mutable disk backends.
conformance:
	$(GO) test -race -run 'InvalidationConformance|Door|Shield' ./internal/server/front ./internal/core

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

figures:
	$(GO) run ./cmd/nncbench -figure=all -scale=small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/players
	$(GO) run ./examples/checkins
	$(GO) run ./examples/tradeoff
	$(GO) run ./examples/nncore

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_new.txt bench_parallel_new.json bench_load_new.json bench_cluster_new.json mutex.prof block.prof

verify:
	$(GO) run ./cmd/nncbench -verify -scale=small

fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/dataio
	$(GO) test -fuzz=FuzzOpen -fuzztime=30s ./internal/pager
	$(GO) test -fuzz=FuzzRecordDecode -fuzztime=30s ./internal/diskstore
	$(GO) test -fuzz=FuzzNodeDecode -fuzztime=30s ./internal/diskrtree
	$(GO) test -fuzz=FuzzSuperDecode -fuzztime=30s ./internal/diskindex

# fuzz-smoke is the short decoder pass wired into `make check`: every
# on-disk decoder (object record, rtree node, super page) survives 10s of
# coverage-guided input without panicking or accepting garbage.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzRecordDecode -fuzztime=10s ./internal/diskstore
	$(GO) test -run='^$$' -fuzz=FuzzNodeDecode -fuzztime=10s ./internal/diskrtree
	$(GO) test -run='^$$' -fuzz=FuzzSuperDecode -fuzztime=10s ./internal/diskindex

# wal runs the durability suite under the race detector: WAL unit tests,
# the crash kill-point sweeps (exact pre-or-post transaction recovery at
# every byte offset the log can die at), snapshot-isolated readers under
# a concurrent writer, the mutable/in-memory conformance suite, the
# structural fsck's seeded-corruption detection, and the HTTP mutation
# endpoints.
wal:
	$(GO) test -race -run 'WAL|Crash|Snapshot|Mutable|Mutation|FsckStruct|Recover|Scan|Append|Truncated|Dump|Checkpoint' \
		./internal/wal ./internal/diskindex ./internal/server

# cluster runs the scatter-gather tier under the race detector: the
# merge-invariant property sweep (sharded == single node, byte for byte,
# shard counts 1–8 × every operator and filter configuration), the
# breaker state machine, and the seeded chaos suite (drop/delay/5xx/
# half-response/flap injection, replica kill → failover, shard kill →
# flagged 206 degradation, restore → probe-driven recovery), then the
# nncload failover drill with its qualitative gate armed.
cluster:
	$(GO) test -race ./internal/cluster ./internal/clusterfault
	$(GO) run ./cmd/nncload -cluster -gate -out=bench_cluster_new.json

# faults runs the end-to-end fault-injection suite under the race
# detector: engine degradation, quarantine, retry, fsck, legacy compat.
faults:
	$(GO) test -race -run 'Fault|Faults|Degrad|Partial|Torn|Transient|Quarantine|Legacy|Fsck|Rewrite|Waiter|Panic|Ready|Healthz|Stream|BitFlip|ShortRead|Classify|PageError|Backoff|Sleep' \
		./internal/faults ./internal/faultfile ./internal/pager ./internal/diskindex ./internal/core ./internal/server
