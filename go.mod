module spatialdom

go 1.22
