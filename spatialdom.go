// Package spatialdom is a Go implementation of optimal spatial dominance
// operators for nearest-neighbor candidate (NNC) search over objects with
// multiple instances, reproducing Wang et al., "Optimal Spatial Dominance:
// An Effective Search of Nearest Neighbor Candidates", SIGMOD 2015.
//
// An object (and the query itself) is a set of weighted instances — a
// discrete uncertain object or a normalized multi-valued object. Because
// there are many reasonable NN functions for such objects, the library
// computes a set of NN candidates that provably contains the nearest
// neighbor under every function of a chosen family:
//
//	op         optimal for            candidate set
//	SSD        N1 (all-pairs)         smallest
//	SSSD       N1 ∪ N2 (+worlds)      ⊇ SSD's
//	PSD        N1 ∪ N2 ∪ N3 (+EMD…)   ⊇ SSSD's
//	FSD, F+SD  correct, not complete  largest (baselines)
//
// # Quick start
//
//	a, _ := spatialdom.NewObject(1, [][]float64{{1, 2}, {2, 3}}, nil)
//	b, _ := spatialdom.NewObject(2, [][]float64{{8, 8}, {9, 9}}, nil)
//	q, _ := spatialdom.NewObject(0, [][]float64{{0, 0}, {1, 1}}, nil)
//	idx, _ := spatialdom.NewIndex([]*spatialdom.Object{a, b})
//	res := idx.Search(q, spatialdom.PSD)
//	fmt.Println(res.IDs()) // NN candidates under every N1∪N2∪N3 function
//
// The facade re-exports the stable surface of the internal packages:
// internal/core (dominance operators, Algorithm 1, k-skybands, streaming),
// internal/uncertain (the object model), internal/nnfunc (the NN-function
// families), internal/datagen (evaluation datasets), internal/dataio (CSV
// import/export), internal/diskindex (the page-file-resident index, see
// BuildDiskIndex) and internal/harness (the figure reproduction harness).
package spatialdom

import (
	"context"
	"io"

	"spatialdom/internal/core"
	"spatialdom/internal/datagen"
	"spatialdom/internal/dataio"
	"spatialdom/internal/geom"
	"spatialdom/internal/harness"
	"spatialdom/internal/nnfunc"
	"spatialdom/internal/uncertain"
)

// Point is a point in d-dimensional Euclidean space.
type Point = geom.Point

// Object is an object with multiple weighted instances.
type Object = uncertain.Object

// NewObject builds an object from instance coordinate rows and optional
// weights (nil = uniform). Weights are normalized to probabilities.
func NewObject(id int, instances [][]float64, weights []float64) (*Object, error) {
	pts := make([]geom.Point, len(instances))
	for i, row := range instances {
		pts[i] = geom.Point(row)
	}
	return uncertain.New(id, pts, weights)
}

// Operator selects a spatial dominance operator.
type Operator = core.Operator

// The spatial dominance operators, ordered along the cover chain
// F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD.
const (
	// SSD (stochastic SD) is optimal w.r.t. the all-pairs family N1.
	SSD = core.SSD
	// SSSD (strict stochastic SD) is optimal w.r.t. N1 ∪ N2.
	SSSD = core.SSSD
	// PSD (peer SD) is optimal w.r.t. N1 ∪ N2 ∪ N3.
	PSD = core.PSD
	// FSD is instance-level full spatial dominance (correct, not complete).
	FSD = core.FSD
	// FPlusSD is the MBR-level baseline of Emrich et al.
	FPlusSD = core.FPlusSD
)

// Operators lists every operator in cover order.
var Operators = core.Operators

// Index organizes objects for NN-candidate search.
type Index = core.Index

// NewIndex builds a search index over the objects (unique IDs, one shared
// dimensionality).
func NewIndex(objs []*Object) (*Index, error) { return core.NewIndex(objs) }

// Candidate, Result and SearchOptions describe a search outcome; see the
// core package for field documentation. IOStats (Result.IO) carries the
// storage-access counters of a disk-backed search and is zero in memory.
type (
	Candidate     = core.Candidate
	Result        = core.Result
	SearchOptions = core.SearchOptions
	FilterConfig  = core.FilterConfig
	Stats         = core.Stats
	IOStats       = core.IOStats
)

// AllFilters enables every Section 5.1 filtering technique.
var AllFilters = core.AllFilters

// Backend is the storage interface the query engine traverses; Index and
// DiskIndex are the built-in implementations. Custom storage layers
// (remote shards, column stores, caches) implement it and pass through
// SearchBackend to get the full Algorithm 1 feature set — filters,
// metrics, k-skyband, Limit, cancellation, progressive emission.
type (
	Backend      = core.Backend
	NodeRef      = core.NodeRef
	ObjRef       = core.ObjRef
	BackendEntry = core.BackendEntry
)

// SearchBackend runs Algorithm 1 generalized to the k-skyband over any
// Backend; see core.SearchBackend.
func SearchBackend(ctx context.Context, b Backend, q *Object, op Operator, k int, opts SearchOptions) (*Result, error) {
	return core.SearchBackend(ctx, b, q, op, k, opts)
}

// KSearcher is the minimal concurrent search surface a parallel batch
// needs; *Index and *DiskIndex both satisfy it.
type KSearcher = core.KSearcher

// SearchParallel runs one search per query fanned out over workers
// goroutines (workers <= 0 uses GOMAXPROCS) and returns results in input
// order. Both built-in backends are safe for this: the in-memory index is
// immutable during searches, and the disk index's buffer pool and object
// cache are sharded with per-search I/O attribution, so concurrent
// batches return byte-for-byte the candidates of serial execution. The
// first error cancels the rest of the batch; see core.SearchParallel.
func SearchParallel(ctx context.Context, s KSearcher, queries []*Object, op Operator, k int, opts SearchOptions, workers int) ([]*Result, error) {
	return core.SearchParallel(ctx, s, queries, op, k, opts, workers)
}

// Metric abstracts the instance distance; the paper's techniques extend to
// any metric (Section 2.1). Pass one via SearchOptions.Metric or
// NewCheckerMetric; nil/default is Euclidean.
type Metric = geom.Metric

// The built-in metrics.
var (
	Euclidean = geom.Euclidean
	Manhattan = geom.Manhattan
	Chebyshev = geom.Chebyshev
)

// NewCheckerMetric is NewChecker under an arbitrary metric.
func NewCheckerMetric(query *Object, op Operator, cfg FilterConfig, m Metric) *Checker {
	return core.NewCheckerMetric(query, op, cfg, m)
}

// Checker decides pairwise spatial dominance for a fixed query.
type Checker = core.Checker

// Note on k-NN candidates: Index.SearchK / Index.SearchKOpts (via the
// core alias) generalize Search to the k-skyband — every object dominated
// by fewer than k others — which is guaranteed to contain the top-k
// objects of every covered NN function.

// NewChecker returns a dominance checker for the query under the operator.
func NewChecker(query *Object, op Operator, cfg FilterConfig) *Checker {
	return core.NewChecker(query, op, cfg)
}

// --- NN functions --------------------------------------------------------

// NNFunc is an NN ranking function; smaller scores rank closer.
type NNFunc = nnfunc.Func

// Family identifies an NN-function family (N1, N2, N3).
type Family = nnfunc.Family

// The three families.
const (
	N1 = nnfunc.N1
	N2 = nnfunc.N2
	N3 = nnfunc.N3
)

// N1 functions (all-pairs aggregates).
var (
	MinDistFunc      = nnfunc.MinDist
	MaxDistFunc      = nnfunc.MaxDist
	ExpectedDistFunc = nnfunc.ExpectedDist
	QuantileDistFunc = nnfunc.QuantileDist
	QuantileMixFunc  = nnfunc.QuantileMix
)

// N2 functions (possible-world based).
var (
	NNProbFunc       = nnfunc.NNProb
	ExpectedRankFunc = nnfunc.ExpectedRank
	GlobalTopKFunc   = nnfunc.GlobalTopK
)

// N3 functions (selected pairs).
var (
	HausdorffFunc        = nnfunc.Hausdorff
	PartialHausdorffFunc = nnfunc.PartialHausdorff
	MeanHausdorffFunc    = nnfunc.MeanHausdorff
	SumMinDistFunc       = nnfunc.SumMinDist
	EMDFunc              = nnfunc.EMD
	NetflowFunc          = nnfunc.Netflow
)

// NearestNeighbor returns the NN object under f.
func NearestNeighbor(objs []*Object, q *Object, f NNFunc) *Object {
	return nnfunc.NN(objs, q, f)
}

// RankObjects orders the objects by non-decreasing score under f.
func RankObjects(objs []*Object, q *Object, f NNFunc) []*Object {
	return nnfunc.Ranking(objs, q, f)
}

// --- datasets and experiments ----------------------------------------------

// DatasetParams mirrors Table 2 of the paper; see internal/datagen.
type DatasetParams = datagen.Params

// Dataset is a generated evaluation dataset.
type Dataset = datagen.Dataset

// GenerateDataset builds a deterministic synthetic dataset.
func GenerateDataset(p DatasetParams) *Dataset { return datagen.Generate(p) }

// SpatialSkyline computes the classic spatial skyline (Sharifzadeh &
// Shahabi): the single-instance special case of the dominance framework.
// It returns the indices of points not spatially dominated w.r.t. the
// query points, in non-decreasing order of distance to the query.
func SpatialSkyline(points, query [][]float64) []int {
	ps := make([]geom.Point, len(points))
	for i, row := range points {
		ps[i] = geom.Point(row)
	}
	qs := make([]geom.Point, len(query))
	for i, row := range query {
		qs[i] = geom.Point(row)
	}
	return core.SpatialSkyline(ps, qs)
}

// LoadObjectsCSV reads objects from a CSV file in the dataio format
// (object_id, instance_idx, weight, x1, ..., xd).
func LoadObjectsCSV(path string) ([]*Object, error) { return dataio.ReadFile(path) }

// SaveObjectsCSV writes objects to a CSV file in the dataio format.
func SaveObjectsCSV(path string, objs []*Object) error { return dataio.WriteFile(path, objs) }

// ReproduceFigure regenerates a figure from the paper's evaluation
// ("10", "11a"…"11f", "12", "13a"…"13f", "14", "16") or one of the
// extension experiments ("k" for k-NN candidates, "io" for disk-resident
// page I/O) at the given scale ("tiny", "small", "medium", "paper"),
// writing the table to w.
func ReproduceFigure(figure, scale string, seed int64, w io.Writer) error {
	sc, err := harness.ParseScale(scale)
	if err != nil {
		return err
	}
	return harness.Figure(figure, sc, seed, w)
}

// Figures lists every reproducible figure id.
func Figures() []string { return harness.Figures() }
